"""The DAG view store: gen tables, edge relations, ordered children.

``gen_id`` (paper, Section 2.3) is realized as deterministic interning:
the first time a ``(type, $A)`` pair is seen it receives the next dense
integer id; the mapping is stored in per-type *gen tables*.  Edges are
kept three ways, all consistent:

- per-type-pair edge relations ``edge_A_B`` (sets of ``(id_A, id_B)``),
  the unit the paper's ``ΔV`` group updates operate on;
- an ordered children list per node (XML is ordered; inserts append as
  the rightmost child, matching the paper's insert semantics);
- a parent set per node (the DAG evaluator and the maintenance
  algorithms walk edges upwards).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Iterator, Literal

from repro.atg.model import ATG
from repro.errors import ReproError
from repro.relational.database import Database
from repro.relational.schema import AttrType, RelationSchema


@dataclass(frozen=True)
class EdgeOp:
    """One edge-relation operation inside a view group update ``ΔV``."""

    kind: Literal["insert", "delete"]
    parent_type: str
    child_type: str
    parent: int
    child: int

    @property
    def relation(self) -> str:
        return f"edge_{self.parent_type}_{self.child_type}"


class ViewDelta:
    """A group update ``ΔV`` over the edge relations."""

    def __init__(self, ops: Iterable[EdgeOp] = ()):
        self.ops: list[EdgeOp] = list(ops)

    def insert(self, parent_type: str, child_type: str, parent: int, child: int):
        self.ops.append(EdgeOp("insert", parent_type, child_type, parent, child))

    def delete(self, parent_type: str, child_type: str, parent: int, child: int):
        self.ops.append(EdgeOp("delete", parent_type, child_type, parent, child))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[EdgeOp]:
        return iter(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def deletions(self) -> list[EdgeOp]:
        return [op for op in self.ops if op.kind == "delete"]

    def insertions(self) -> list[EdgeOp]:
        return [op for op in self.ops if op.kind == "insert"]


class ViewStore:
    """DAG representation of a published XML view, stored relationally."""

    def __init__(self, atg: ATG):
        self.atg = atg
        self._next_id = 0
        self._intern: dict[tuple[str, tuple], int] = {}
        self.node_type: dict[int, str] = {}
        self.node_sem: dict[int, tuple] = {}
        self.gen: dict[str, dict[int, tuple]] = {t: {} for t in atg.dtd.types}
        self.children: dict[int, list[int]] = {}
        self.parents: dict[int, set[int]] = {}
        self.edges: dict[tuple[str, str], set[tuple[int, int]]] = {
            edge: set() for edge in atg.dtd.edges()
        }
        self.root_id: int | None = None

    # -- node management -----------------------------------------------------------

    def intern(self, element: str, sem: tuple) -> tuple[int, bool]:
        """gen_id: return the node id for ``(element, sem)``.

        The second component is ``True`` when the node is new.
        """
        sem = tuple(sem)
        key = (element, sem)
        node = self._intern.get(key)
        if node is not None:
            return node, False
        node = self._next_id
        self._next_id += 1
        self._intern[key] = node
        self.node_type[node] = element
        self.node_sem[node] = sem
        self.gen.setdefault(element, {})[node] = sem
        self.children[node] = []
        self.parents[node] = set()
        return node, True

    def lookup(self, element: str, sem: tuple) -> int | None:
        """Existing id of ``(element, sem)``, or ``None``."""
        return self._intern.get((element, tuple(sem)))

    def has_node(self, node: int) -> bool:
        return node in self.node_type

    def remove_node(self, node: int) -> None:
        """Remove an isolated node (no incident edges) from the gen tables."""
        if self.children.get(node) or self.parents.get(node):
            raise ReproError(f"node {node} still has incident edges")
        element = self.node_type.pop(node)
        sem = self.node_sem.pop(node)
        del self._intern[(element, sem)]
        del self.gen[element][node]
        self.children.pop(node, None)
        self.parents.pop(node, None)

    def ensure_node(self, node: int, element: str, sem: tuple) -> bool:
        """Install ``(element, sem)`` under a *caller-chosen* id.

        The replication fold's counterpart of :meth:`intern`: a replica
        mirrors the writer's interning decisions instead of making its
        own, so node ids stay identical across processes.  Returns
        ``True`` when the node was newly installed, ``False`` when the
        exact binding already exists; a conflicting binding (same id
        bound to different data, or same data bound to a different id)
        raises :class:`~repro.errors.ReproError`.  The id allocator is
        advanced past ``node`` so local interning never collides.
        """
        sem = tuple(sem)
        key = (element, sem)
        existing = self._intern.get(key)
        if existing is not None:
            if existing != node:
                raise ReproError(
                    f"({element}, {sem!r}) is already interned as node "
                    f"{existing}, cannot rebind to {node}"
                )
            return False
        if node in self.node_type:
            raise ReproError(
                f"node id {node} is already bound to "
                f"({self.node_type[node]}, {self.node_sem[node]!r})"
            )
        self._intern[key] = node
        self.node_type[node] = element
        self.node_sem[node] = sem
        self.gen.setdefault(element, {})[node] = sem
        self.children[node] = []
        self.parents[node] = set()
        if node >= self._next_id:
            self._next_id = node + 1
        return True

    def release_ids(self, ids: Iterable[int]) -> None:
        """Return already-removed node ids to the allocator if possible.

        Ids are handed back only when they are still the top of the id
        space (nothing interned since) — then the counter rewinds and a
        later intern reuses them, so a rolled-back publish leaves the
        store byte-identical.  Otherwise this is a no-op: ids are never
        reused out of order.
        """
        ids = [n for n in ids if not self.has_node(n)]
        if ids and self._next_id == max(ids) + 1:
            self._next_id = min(ids)

    def type_of(self, node: int) -> str:
        return self.node_type[node]

    def sem_of(self, node: int) -> tuple:
        return self.node_sem[node]

    def value_of(self, node: int) -> str | None:
        """String value used by XPath value filters (PCDATA leaves)."""
        element = self.node_type[node]
        if self.atg.dtd.is_pcdata(element):
            sem = self.node_sem[node]
            if len(sem) >= 1:
                return str(sem[0])
            return ""
        return None

    # -- edge management -----------------------------------------------------------

    def has_edge(self, parent: int, child: int) -> bool:
        return parent in self.parents.get(child, ())

    def add_edge(self, parent: int, child: int) -> bool:
        """Add edge (append child rightmost); no-op if present.

        Returns ``True`` if the edge was newly added.
        """
        if self.has_edge(parent, child):
            return False
        ptype = self.node_type[parent]
        ctype = self.node_type[child]
        key = (ptype, ctype)
        if key not in self.edges:
            raise ReproError(f"edge type {ptype}->{ctype} not in the DTD")
        self.edges[key].add((parent, child))
        self.children[parent].append(child)
        self.parents[child].add(parent)
        return True

    def remove_edge(self, parent: int, child: int) -> bool:
        """Remove edge; no-op (returns False) if absent."""
        if not self.has_edge(parent, child):
            return False
        ptype = self.node_type[parent]
        ctype = self.node_type[child]
        self.edges[(ptype, ctype)].discard((parent, child))
        self.children[parent].remove(child)
        self.parents[child].discard(parent)
        return True

    def apply(self, delta: ViewDelta) -> None:
        """Apply a ``ΔV`` group update to the edge relations."""
        for op in delta:
            if op.kind == "insert":
                self.add_edge(op.parent, op.child)
            else:
                self.remove_edge(op.parent, op.child)

    # -- traversal -----------------------------------------------------------------

    def children_of(self, node: int) -> list[int]:
        return self.children.get(node, [])

    def parents_of(self, node: int) -> set[int]:
        return self.parents.get(node, set())

    def nodes(self) -> Iterator[int]:
        return iter(self.node_type)

    def descendants_of(self, roots: Iterable[int]) -> set[int]:
        """Proper descendants of ``roots`` by edge walk (no index).

        The slow-path equivalent of
        :meth:`repro.index.ReachabilityIndex.desc_of_set`, used when the
        reachability index is deferred (batched update sessions).
        """
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            for child in self.children.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    stack.append(child)
        return seen

    def reachable_from_root(self) -> set[int]:
        if self.root_id is None:
            return set()
        return {self.root_id} | self.descendants_of([self.root_id])

    # -- statistics ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.node_type)

    @property
    def num_edges(self) -> int:
        return sum(len(e) for e in self.edges.values())

    @property
    def size(self) -> int:
        """|V|: nodes plus edges of the relational view representation."""
        return self.num_nodes + self.num_edges

    def in_degree(self, node: int) -> int:
        return len(self.parents.get(node, ()))

    def out_degree(self, node: int) -> int:
        return len(self.children.get(node, ()))

    def sharing_rate(self) -> float:
        """Fraction of nodes with more than one parent (subtree sharing)."""
        if not self.node_type:
            return 0.0
        shared = sum(1 for n in self.node_type if self.in_degree(n) > 1)
        return shared / len(self.node_type)

    # -- export / import (replication snapshots) --------------------------------------

    def export_state(self) -> dict:
        """The complete store state as one JSON-safe dict.

        The shape feeds replication snapshots
        (:class:`repro.replica.Snapshot`) and byte-level equality
        checks: two stores with equal ``export_state()`` are
        behaviourally identical (same interning table, same id
        allocator, same ordered edges).  Keys:

        - ``next_id`` — the id allocator watermark;
        - ``root`` — the root node id (or ``None`` pre-publish);
        - ``nodes`` — ``[id, element, [sem...]]`` rows, sorted by id;
        - ``children`` — ``[parent, [child...]]`` rows for nodes with
          children, sorted by parent, child lists in document order.

        Parent sets and per-type-pair edge relations are derived on
        import.  Sem values must be JSON scalars for the dict to be
        JSON-safe (true for every built-in workload).
        """
        return {
            "next_id": self._next_id,
            "root": self.root_id,
            "nodes": [
                [node, self.node_type[node], list(self.node_sem[node])]
                for node in sorted(self.node_type)
            ],
            "children": [
                [node, list(kids)]
                for node, kids in sorted(self.children.items())
                if kids
            ],
        }

    @classmethod
    def from_state(cls, atg: ATG, state: dict) -> "ViewStore":
        """Rebuild a store from :meth:`export_state` output.

        The ATG is not part of the state (view definitions are code, not
        data — snapshots carry only a fingerprint); the caller supplies
        the same ATG the exporting store was published from.  Round-trip
        is lossless: ``from_state(atg, s.export_state()).export_state()
        == s.export_state()``.
        """
        store = cls(atg)
        try:
            for node, element, sem in state["nodes"]:
                store.ensure_node(node, element, tuple(sem))
            for parent, kids in state["children"]:
                for child in kids:
                    store.add_edge(parent, child)
            store.root_id = state["root"]
            store._next_id = max(store._next_id, state["next_id"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed store state: {exc!r}") from exc
        return store

    def canonical_bytes(self) -> bytes:
        """:meth:`export_state` as canonical (sorted, compact) JSON."""
        return json.dumps(
            self.export_state(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")

    def digest(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_bytes`.

        Two stores with equal digests hold byte-identical state — the
        convergence check replicas and the replication demo use.
        """
        return hashlib.sha256(self.canonical_bytes()).hexdigest()

    # -- relational materialization ---------------------------------------------------

    def to_database(self, name: str = "view_store") -> Database:
        """Materialize gen and edge tables into a relational database.

        ``gen_A(id, col1, ..., colk)`` per element type and
        ``edge_A_B(parent, child, position)`` per DTD edge — the exact
        "XML view stored in relations" of the paper (plus an explicit
        child position to preserve XML ordering).
        """
        db = Database(name)
        for element in self.atg.dtd.types:
            columns = [("id", AttrType.INT)]
            for col in self.atg.signature(element):
                columns.append((f"a_{col}", _attr_type_for(element, col, self)))
            schema = RelationSchema(f"gen_{element}", columns, key=("id",))
            db.create_table(schema)
            for node, sem in sorted(self.gen.get(element, {}).items()):
                db.insert(f"gen_{element}", (node, *sem))
        for (parent_t, child_t), pairs in sorted(self.edges.items()):
            schema = RelationSchema(
                f"edge_{parent_t}_{child_t}",
                [
                    ("parent", AttrType.INT),
                    ("child", AttrType.INT),
                    ("position", AttrType.INT),
                ],
                key=("parent", "child"),
            )
            db.create_table(schema)
            for parent, child in sorted(pairs):
                position = self.children[parent].index(child)
                db.insert(f"edge_{parent_t}_{child_t}", (parent, child, position))
        return db


def _attr_type_for(element: str, col: str, store: ViewStore) -> AttrType:
    """Infer a column type from the first stored value (STR fallback)."""
    for sem in store.gen.get(element, {}).values():
        index = store.atg.signature(element).index(col)
        value = sem[index]
        if isinstance(value, bool):
            return AttrType.BOOL
        if isinstance(value, int):
            return AttrType.INT
        if isinstance(value, float):
            return AttrType.FLOAT
        return AttrType.STR
    return AttrType.STR
