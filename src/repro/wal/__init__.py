"""Durable changefeed log: segments, checkpoints, crash recovery.

The subsystem behind ``ViewConfig(wal_dir=...)``: every published
changefeed event (plus its base-table ΔR) is appended to a rotating,
CRC-framed segment log with periodic snapshot checkpoints, so a writer
process can die at *any* instant — mid-append, mid-rename, mid-fsync —
and ``repro.open_view`` restores the exact last-acknowledged state from
the directory.  Durable consumers resume past process death the same
way: ``service.changefeed(since=g)`` falls back to the log when ``g``
has dropped below the in-memory replay buffer's floor.

See ``docs/durability.md`` for the record framing, fsync-policy
tradeoffs, recovery sequence and compaction semantics.
"""

from repro.wal.fs import OsFileSystem
from repro.wal.log import (
    BATCH_FSYNC_INTERVAL,
    FSYNC_POLICIES,
    WriteAheadLog,
    decode_delta,
    encode_delta,
)
from repro.wal.recover import recover_state
from repro.wal.segment import FRAME_OVERHEAD, TornTail, encode_record, read_segment

__all__ = [
    "BATCH_FSYNC_INTERVAL",
    "FRAME_OVERHEAD",
    "FSYNC_POLICIES",
    "OsFileSystem",
    "TornTail",
    "WriteAheadLog",
    "decode_delta",
    "encode_delta",
    "encode_record",
    "read_segment",
    "recover_state",
]
