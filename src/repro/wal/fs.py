"""The file-system seam under the write-ahead log.

Every byte the WAL touches goes through one :class:`FileSystem`-shaped
object, so the crash-point fault-injection harness (``tests/faults.py``)
can wrap it: count the durability-relevant operations (appends, full
writes, fsyncs, renames), deterministically fail at the Nth one, or
record them all and later *materialize* the exact on-disk state at any
boundary in a fresh directory.  Production uses :class:`OsFileSystem`,
a thin veneer over ``os`` that keeps the active segment's file
descriptor cached (one ``open()`` per append would dominate the commit
path).

The interface is path-based and deliberately small — exactly the
operations whose ordering durability arguments are made of:

========================  =====================================================
``append(path, data)``    append bytes (creating the file if needed)
``write_bytes(p, data)``  create/replace a whole file (tmp files)
``fsync(path)``           flush one file's data to stable storage
``fsync_dir(path)``       flush a *directory* entry (makes renames durable)
``rename(src, dst)``      atomic replace (POSIX rename semantics)
``truncate(p, size)``     cut a file (dropping a torn tail record)
``read_bytes(path)``      whole-file read
``remove(path)``          delete a file (compaction, orphan cleanup)
``exists / listdir``      existence probe / directory listing
``makedirs(path)``        create a directory tree (idempotent)
========================  =====================================================
"""

from __future__ import annotations

import os


class OsFileSystem:
    """The real thing: ``os``-level file operations with an fd cache.

    Append and fsync keep a per-path file descriptor open (the WAL
    appends to one active segment thousands of times); any operation
    that invalidates a path (rename, remove, truncate) drops its cached
    descriptor first.  Not thread-safe by itself — the WAL serializes
    all calls under the writer's critical section.
    """

    def __init__(self) -> None:
        self._fds: dict[str, int] = {}

    def _fd(self, path: str) -> int:
        fd = self._fds.get(path)
        if fd is None:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            self._fds[path] = fd
        return fd

    def _drop(self, path: str) -> None:
        fd = self._fds.pop(path, None)
        if fd is not None:
            os.close(fd)

    # -- mutation (the crash-boundary operations) ----------------------------------

    def append(self, path: str, data: bytes) -> None:
        """Append ``data`` to ``path``, creating the file if needed."""
        os.write(self._fd(path), data)

    def write_bytes(self, path: str, data: bytes) -> None:
        """Create or replace ``path`` with exactly ``data``."""
        self._drop(path)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def fsync(self, path: str) -> None:
        """Flush ``path``'s data and metadata to stable storage."""
        fd = self._fds.get(path)
        if fd is not None:
            os.fsync(fd)
            return
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, path: str) -> None:
        """Flush a directory entry (what makes a rename durable)."""
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def rename(self, src: str, dst: str) -> None:
        """Atomically replace ``dst`` with ``src`` (POSIX rename)."""
        self._drop(src)
        self._drop(dst)
        os.replace(src, dst)

    def truncate(self, path: str, size: int) -> None:
        """Cut ``path`` to ``size`` bytes (torn-tail removal)."""
        self._drop(path)
        os.truncate(path, size)

    def remove(self, path: str) -> None:
        """Delete ``path`` (compaction and orphan cleanup)."""
        self._drop(path)
        os.remove(path)

    # -- reads / probes --------------------------------------------------------------

    def read_bytes(self, path: str) -> bytes:
        """The whole file at ``path``."""
        with open(path, "rb") as handle:
            return handle.read()

    def exists(self, path: str) -> bool:
        """Whether ``path`` exists."""
        return os.path.exists(path)

    def listdir(self, path: str) -> list[str]:
        """Directory entries of ``path``, sorted."""
        return sorted(os.listdir(path))

    def makedirs(self, path: str) -> None:
        """Create ``path`` (and parents); a no-op when present."""
        os.makedirs(path, exist_ok=True)

    def close(self) -> None:
        """Release every cached descriptor (idempotent)."""
        for path in list(self._fds):
            self._drop(path)
