"""Record framing for WAL segments: length + CRC32 + JSON body.

One record per committed changefeed event, laid out as::

    <8 hex chars: body length> <8 hex chars: CRC-32 of body> <body> \\n

The body is one compact JSON object (no raw newlines — ``json.dumps``
escapes them), so a segment doubles as a greppable JSONL file with a
17-byte-per-line framing overhead.  The fixed-width hex header makes
the reader deterministic: it never searches for delimiters, it knows
exactly how many bytes the next record occupies, and any disagreement
between header, CRC and body is an integrity failure at a known byte
offset.

The reader draws exactly one distinction (see :func:`read_segment`):

- an **incomplete** record at the end of the **last** segment is a
  *torn tail* — the only thing a crash mid-append can produce, since
  appends write a valid record front-to-back and a partial write is a
  strict prefix — and is silently dropped (the commit was never
  acknowledged);
- any other failure — a CRC mismatch, a non-hex header, bytes *after*
  the failed record, or any failure in a sealed segment — cannot be
  explained by a crash and raises
  :class:`~repro.errors.WalCorruptionError` naming the segment and
  offset.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass

from repro.errors import WalCorruptionError

#: Bytes of framing per record: 8 hex length + 8 hex CRC + trailing \n.
FRAME_OVERHEAD = 17

#: Header width (length + CRC, both 8 hex chars).
_HEADER = 16


def encode_record(payload: dict) -> bytes:
    """Frame one JSON-safe record payload for appending to a segment."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )
    header = f"{len(body):08x}{zlib.crc32(body) & 0xFFFFFFFF:08x}"
    return header.encode("ascii") + body + b"\n"


@dataclass(frozen=True)
class TornTail:
    """Where a segment's undecodable tail starts (and why it failed)."""

    offset: int
    reason: str


def read_segment(
    data: bytes, name: str, last: bool
) -> tuple[list[tuple[int, dict]], TornTail | None]:
    """Decode every record in one segment's bytes.

    Returns ``(records, torn)`` where ``records`` is a list of
    ``(byte_offset, payload)`` pairs and ``torn`` describes an
    undecodable tail.  ``last`` selects the tail policy: in the last
    segment of the log an *incomplete* trailing record is the torn
    record of the fatal crash (report it for truncation).  Everything
    else — a complete-but-wrong record (CRC flip, bad JSON), an
    incomplete record mid-file, or any failure in a sealed segment —
    is interior corruption a crash cannot explain and raises
    :class:`~repro.errors.WalCorruptionError`.
    """
    records: list[tuple[int, dict]] = []
    pos = 0
    size = len(data)
    while pos < size:
        failure = _try_decode(data, pos)
        if failure is not None:
            # A crash tears by writing a strict prefix of one valid
            # record at EOF; only an incomplete record that exhausts
            # the data qualifies as that tear.
            incomplete = failure.startswith("incomplete")
            if last and incomplete:
                return records, TornTail(offset=pos, reason=failure)
            raise WalCorruptionError(
                f"segment {name} is corrupt at byte {pos}: {failure}",
                segment=name,
                offset=pos,
            )
        length = int(data[pos:pos + 8], 16)
        body = data[pos + _HEADER:pos + _HEADER + length]
        records.append((pos, json.loads(body.decode("utf-8"))))
        pos += _HEADER + length + 1
    return records, None


def _try_decode(data: bytes, pos: int) -> str | None:
    """Why the record at ``pos`` cannot be decoded (``None`` = it can)."""
    header = data[pos:pos + _HEADER]
    if len(header) < _HEADER:
        return f"incomplete header ({len(header)} of {_HEADER} bytes)"
    try:
        length = int(header[:8], 16)
        crc = int(header[8:], 16)
    except ValueError:
        return "non-hex header"
    end = pos + _HEADER + length
    if end + 1 > len(data):
        return (
            f"incomplete body ({len(data) - pos - _HEADER} of "
            f"{length}+1 bytes)"
        )
    if data[end:end + 1] != b"\n":
        return "missing record terminator"
    body = data[pos + _HEADER:end]
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        return "CRC mismatch"
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        return f"body is not valid JSON ({exc})"
    if not isinstance(payload, dict):
        return f"body is not an object ({type(payload).__name__})"
    return None
