"""Crash recovery: newest checkpoint + log replay → writer state.

The recovery sequence (also narrated in ``docs/durability.md``):

1. load the newest checkpoint the manifest references — a full
   :class:`~repro.replica.snapshot.Snapshot` of the view store plus the
   base database's row state, both captured at one generation;
2. restore the store against the caller's ATG (fingerprint-verified)
   and reload the base tables;
3. replay every logged record past the checkpoint generation, applying
   its ΔR to the base database and folding its event into the store
   with the replica's own :func:`~repro.replica.fold.fold_event` —
   recovery and replication rebuild state through the same code path;
4. report the generation the replay landed on, which becomes the
   recovered service's version counter.

Torn tails were already truncated at WAL open (a crash mid-append can
only tear the last record, and an un-acknowledged commit owes nobody
durability); anything else that fails to decode raised a typed
:class:`~repro.errors.WalCorruptionError` before this module runs.
"""

from __future__ import annotations

from repro.atg.model import ATG
from repro.errors import WalError
from repro.relational.database import Database
from repro.replica.fold import fold_event
from repro.replica.snapshot import Snapshot
from repro.subscribe.delta import ViewEvent
from repro.views.store import ViewStore
from repro.wal.log import WriteAheadLog, decode_delta


def recover_state(
    atg: ATG,
    db: Database,
    wal: WriteAheadLog,
    verify_fingerprint: bool = True,
) -> tuple[ViewStore, int] | None:
    """Rebuild the writer's store and base rows from an opened WAL.

    Mutates ``db`` in place (checkpoint rows, then replayed ΔRs) and
    returns ``(store, generation)`` — or ``None`` when the log holds no
    checkpoint yet, meaning the directory is fresh and the caller should
    boot normally and cut the initial checkpoint itself.

    A coarse record in the replay range raises :class:`WalError`: its
    edge list does not describe the change, and the writer checkpoints
    immediately after logging one precisely so that recovery never needs
    to replay past it (hitting this means that checkpoint was lost).
    """
    payload = wal.latest_checkpoint()
    if payload is None:
        return None
    state = payload["state"]
    snapshot = Snapshot.from_dict(state["snapshot"])
    store = snapshot.restore_store(atg, verify_fingerprint=verify_fingerprint)
    db.load_state(state["db"])
    generation = payload["generation"]
    for gen, record in wal.records_since(generation):
        event = ViewEvent.from_dict(record["event"])
        if event.coarse:
            raise WalError(
                f"cannot replay the coarse record at generation {gen} "
                f"(reason={event.reason!r}): its edge list does not "
                f"describe the change and the checkpoint that should "
                f"cover it is missing"
            )
        delta = decode_delta(record.get("delta_r"))
        if delta is not None:
            db.apply(delta)
        fold_event(store, event)
        generation = gen
    return store, generation
