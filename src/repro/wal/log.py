"""The write-ahead log: rotating segments, manifest, checkpoints.

One :class:`WriteAheadLog` per WAL directory.  The layout::

    wal/
      manifest.json        # which files are live, and the replay floor
      seg-00000001.wal     # sealed segment (length/CRC-framed records)
      seg-00000002.wal     # the active segment (appends go here)
      ckpt-000000000042.gz # checkpoint: snapshot + base-db state at gen 42

Every committed changefeed event is appended to the active segment as
one framed record (:mod:`repro.wal.segment`) carrying the event's
frozen wire form *plus* the commit's base-table ΔR (engine-internal,
never on the changefeed wire) — together they are exactly what crash
recovery needs to restore both the view store and the base database.

Durability discipline:

- records are written with ``os.write`` (no userspace buffering), so an
  un-fsynced record survives a *process* crash; the fsync policy only
  decides exposure to a *machine* crash;
- the manifest is replaced atomically (tmp + fsync + rename + directory
  fsync), and checkpoints are fully durable *before* the manifest
  references them, so a manifest never points at bytes that might not
  exist — anything a crash strands is an unreferenced orphan, removed
  at the next open;
- the active segment is fsynced before a checkpoint is cut, so a
  surviving checkpoint can never be newer than the surviving log tail
  (a consumer resuming from below the checkpoint would otherwise find
  a hole).

Retention: each checkpoint advances the *replay floor* to the oldest
retained checkpoint's generation and deletes segments wholly below it,
so :class:`~repro.errors.ReplayGapError.oldest_available` always names
a generation some live checkpoint covers.
"""

from __future__ import annotations

import gzip
import json
import pickle

from repro.errors import (
    ReplayGapError,
    WalCheckpointError,
    WalCorruptionError,
    WalError,
)
from repro.relational.database import DeltaOp, RelationalDelta
from repro.subscribe.delta import ViewEvent
from repro.wal.fs import OsFileSystem
from repro.wal.segment import encode_record, read_segment

#: Manifest envelope format tag / version.
MANIFEST_FORMAT = "repro-wal"
MANIFEST_VERSION = 1

#: Checkpoint envelope format tag / version.
CHECKPOINT_FORMAT = "repro-wal-checkpoint"
CHECKPOINT_VERSION = 1

#: The fsync policies (see ``docs/durability.md`` for the tradeoffs).
FSYNC_POLICIES = ("always", "batch", "os")

#: Appends between fsyncs under the ``batch`` policy (rotation,
#: checkpoints and ``close()`` always sync the active segment first).
BATCH_FSYNC_INTERVAL = 32

_MANIFEST = "manifest.json"


def encode_delta(delta: RelationalDelta | None) -> list | None:
    """The JSON-safe record form of a commit's ΔR (``None`` stays)."""
    if delta is None or not delta.ops:
        return None
    return [[op.kind, op.relation, list(op.row)] for op in delta.ops]


def decode_delta(payload) -> RelationalDelta | None:
    """Inverse of :func:`encode_delta` (rows come back as tuples)."""
    if payload is None:
        return None
    return RelationalDelta(
        DeltaOp(kind, relation, tuple(row)) for kind, relation, row in payload
    )


class WriteAheadLog:
    """An append-only, checkpointed changefeed log in one directory.

    Parameters
    ----------
    directory:
        The WAL directory (created if absent, unless ``readonly``).
    fsync:
        ``'always'`` (fsync per append — every acknowledged commit
        survives power loss), ``'batch'`` (fsync every
        :data:`BATCH_FSYNC_INTERVAL` appends and at every rotation /
        checkpoint / close — the default), or ``'os'`` (no explicit
        fsync; the OS page cache decides).
    segment_bytes:
        Rotation threshold: an append that grows the active segment to
        this size seals it and starts a new one.
    checkpoint_every:
        Records between periodic checkpoints (the hub consults
        :meth:`should_checkpoint` after each append).
    keep_checkpoints:
        Retained checkpoints; writing one past this count compacts the
        oldest away and advances the replay floor.
    fs:
        The file-system seam (:class:`~repro.wal.fs.OsFileSystem` by
        default; tests inject fault-injection wrappers).
    readonly:
        Open without mutating: no orphan cleanup, no torn-tail
        truncation (the tail is simply ignored), appends and
        checkpoints refused.  Safe against a directory another process
        is actively writing.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = "batch",
        segment_bytes: int = 1 << 20,
        checkpoint_every: int = 256,
        keep_checkpoints: int = 2,
        fs=None,
        readonly: bool = False,
        metrics=None,
    ):
        from repro.metrics import NULL_METRICS

        metrics = metrics if metrics is not None else NULL_METRICS
        self._m_records = metrics.counter(
            "repro_wal_records_total",
            "Event records appended to the write-ahead log.",
        )
        self._m_bytes = metrics.counter(
            "repro_wal_bytes_total",
            "Framed bytes appended to the write-ahead log.",
        )
        self._m_fsyncs = metrics.counter(
            "repro_wal_fsyncs_total",
            "Explicit segment fsyncs issued (policy-dependent).",
        )
        self._m_rotations = metrics.counter(
            "repro_wal_rotations_total",
            "Log segments sealed by rotation.",
        )
        self._m_checkpoints = metrics.counter(
            "repro_wal_checkpoints_total",
            "Checkpoints cut into the log.",
        )
        for instrument in (
            self._m_records, self._m_bytes, self._m_fsyncs,
            self._m_rotations, self._m_checkpoints,
        ):
            instrument.inc(0)  # materialize at 0 in the exposition
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < 1024:
            raise WalError(
                f"segment_bytes must be >= 1024, got {segment_bytes!r}"
            )
        if checkpoint_every < 1:
            raise WalError(
                f"checkpoint_every must be >= 1, got {checkpoint_every!r}"
            )
        if keep_checkpoints < 1:
            raise WalError(
                f"keep_checkpoints must be >= 1, got {keep_checkpoints!r}"
            )
        self.directory = str(directory)
        self.fsync_policy = fsync
        self.segment_bytes = segment_bytes
        self.checkpoint_every = checkpoint_every
        self.keep_checkpoints = keep_checkpoints
        self.readonly = readonly
        self.fs = fs if fs is not None else OsFileSystem()
        self._sealed: list[dict] = []          # [{"name": ..., "last": gen}]
        self._active: str = ""
        self._checkpoints: list[dict] = []     # [{"name": ..., "generation"}]
        self._floor = 0
        self._last_generation = 0
        self._active_size = 0
        self._records: list[tuple[int, dict]] = []
        self._since_checkpoint = 0
        self._unsynced = 0
        self.records_appended = 0
        """Records appended by *this* process (not counting replay)."""
        self.fsyncs = 0
        """Explicit segment fsyncs issued (policy-dependent)."""
        self.rotations = 0
        """Segments sealed by this process."""
        self.checkpoints_written = 0
        """Checkpoints cut by this process."""
        self.torn_dropped = 0
        """Torn tail records dropped (truncated) at open."""
        self._open()

    # -- paths -----------------------------------------------------------------------

    def _path(self, name: str) -> str:
        return f"{self.directory}/{name}"

    @staticmethod
    def _segment_name(seq: int) -> str:
        return f"seg-{seq:08d}.wal"

    @staticmethod
    def _checkpoint_name(generation: int) -> str:
        return f"ckpt-{generation:012d}.gz"

    # -- open ------------------------------------------------------------------------

    def _open(self) -> None:
        fs = self.fs
        manifest_path = self._path(_MANIFEST)
        if not fs.exists(manifest_path):
            if self.readonly:
                raise WalError(
                    f"{self.directory} is not a WAL directory "
                    f"(no {_MANIFEST})"
                )
            fs.makedirs(self.directory)
            self._active = self._segment_name(1)
            self._write_manifest()
            return
        try:
            manifest = json.loads(fs.read_bytes(manifest_path))
        except ValueError as exc:
            raise WalCorruptionError(
                f"WAL manifest is not valid JSON: {exc}", segment=_MANIFEST
            ) from None
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != MANIFEST_FORMAT
            or manifest.get("version") != MANIFEST_VERSION
        ):
            raise WalCorruptionError(
                f"not a {MANIFEST_FORMAT}/{MANIFEST_VERSION} manifest: "
                f"{str(manifest)[:80]}",
                segment=_MANIFEST,
            )
        self._sealed = list(manifest.get("sealed", []))
        self._active = manifest["active"]
        self._checkpoints = list(manifest.get("checkpoints", []))
        self._floor = manifest.get("floor", 0)
        if not self.readonly:
            self._remove_orphans()
        for entry in self._checkpoints:
            if not fs.exists(self._path(entry["name"])):
                raise WalCheckpointError(
                    f"manifest references checkpoint {entry['name']} "
                    f"(generation {entry['generation']}) but the file is "
                    f"missing from {self.directory}"
                )
        self._scan_segments()

    def _remove_orphans(self) -> None:
        """Drop files a crash stranded outside the manifest."""
        referenced = {entry["name"] for entry in self._sealed}
        referenced.add(self._active)
        referenced.update(entry["name"] for entry in self._checkpoints)
        referenced.add(_MANIFEST)
        for name in self.fs.listdir(self.directory):
            unowned = name.startswith(("seg-", "ckpt-", "tmp-"))
            if unowned and name not in referenced:
                self.fs.remove(self._path(name))

    def _scan_segments(self) -> None:
        """Replay every live segment into the in-memory record cache.

        Sealed segments must decode completely (any failure is interior
        corruption); the active segment may end in a torn record, which
        is truncated away (or, read-only, ignored).
        """
        fs = self.fs
        for entry in self._sealed:
            path = self._path(entry["name"])
            if not fs.exists(path):
                raise WalCorruptionError(
                    f"manifest references sealed segment {entry['name']} "
                    f"but the file is missing from {self.directory}",
                    segment=entry["name"],
                )
            records, _ = read_segment(
                fs.read_bytes(path), entry["name"], last=False
            )
            self._ingest(records)
        active_path = self._path(self._active)
        if fs.exists(active_path):
            data = fs.read_bytes(active_path)
            records, torn = read_segment(data, self._active, last=True)
            if torn is not None:
                self.torn_dropped += 1
                if not self.readonly:
                    fs.truncate(active_path, torn.offset)
                    if self.fsync_policy != "os":
                        fs.fsync(active_path)
                self._active_size = torn.offset
            else:
                self._active_size = len(data)
            self._ingest(records)
        newest = self._checkpoints[-1]["generation"] if self._checkpoints else 0
        self._last_generation = max(self._last_generation, newest)
        self._since_checkpoint = sum(
            1 for gen, _ in self._records if gen > newest
        )

    def _ingest(self, records: list[tuple[int, dict]]) -> None:
        for _, payload in records:
            generation = payload.get("generation")
            if not isinstance(generation, int) or isinstance(generation, bool):
                raise WalCorruptionError(
                    f"record carries no integer generation: "
                    f"{str(payload)[:80]}"
                )
            self._records.append((generation, payload))
            self._last_generation = max(self._last_generation, generation)

    # -- the manifest ----------------------------------------------------------------

    def _write_manifest(self) -> None:
        data = json.dumps(
            {
                "format": MANIFEST_FORMAT,
                "version": MANIFEST_VERSION,
                "sealed": self._sealed,
                "active": self._active,
                "checkpoints": self._checkpoints,
                "floor": self._floor,
            },
            sort_keys=True,
        ).encode("utf-8")
        fs = self.fs
        fs.makedirs(self.directory)
        tmp = self._path("tmp-manifest.json")
        fs.write_bytes(tmp, data)
        if self.fsync_policy != "os":
            fs.fsync(tmp)
        fs.rename(tmp, self._path(_MANIFEST))
        if self.fsync_policy != "os":
            fs.fsync_dir(self.directory)

    # -- the write path ----------------------------------------------------------------

    def _check_writable(self) -> None:
        if self.readonly:
            raise WalError("this WAL handle is read-only")

    def append(self, event: ViewEvent) -> None:
        """Durably log one published event (+ its ΔR) in commit order.

        Called by the changefeed hub inside the writer's critical
        section, after the commit's state change and replay-buffer
        append — the WAL sees exactly the published event stream.
        """
        self._check_writable()
        if event.generation <= self._last_generation:
            raise WalError(
                f"append out of order: generation {event.generation} after "
                f"{self._last_generation}"
            )
        payload = {
            "generation": event.generation,
            "event": event.to_dict(),
            "delta_r": encode_delta(event.delta_r),
        }
        data = encode_record(payload)
        path = self._path(self._active)
        self.fs.append(path, data)
        self._active_size += len(data)
        self._records.append((event.generation, payload))
        self._last_generation = event.generation
        self.records_appended += 1
        self._m_records.inc()
        self._m_bytes.inc(len(data))
        self._since_checkpoint += 1
        self._unsynced += 1
        if self.fsync_policy == "always" or (
            self.fsync_policy == "batch"
            and self._unsynced >= BATCH_FSYNC_INTERVAL
        ):
            self._fsync_active()
        if self._active_size >= self.segment_bytes:
            self._rotate()

    def _fsync_active(self) -> None:
        path = self._path(self._active)
        if self._unsynced and self.fs.exists(path):
            self.fs.fsync(path)
            self.fsyncs += 1
            self._m_fsyncs.inc()
        self._unsynced = 0

    def _rotate(self) -> None:
        """Seal the active segment and open a fresh one (lazily)."""
        if self.fsync_policy != "os":
            self._fsync_active()
        self._sealed.append(
            {"name": self._active, "last": self._last_generation}
        )
        seq = max(
            (
                int(entry["name"][4:12])
                for entry in (*self._sealed, {"name": self._active})
            ),
            default=0,
        )
        self._active = self._segment_name(seq + 1)
        self._active_size = 0
        self._unsynced = 0
        self.rotations += 1
        self._m_rotations.inc()
        self._write_manifest()

    # -- checkpoints -------------------------------------------------------------------

    def should_checkpoint(self) -> bool:
        """Whether the periodic-checkpoint interval has elapsed."""
        return self._since_checkpoint >= self.checkpoint_every

    def write_checkpoint(self, state: dict, generation: int) -> None:
        """Cut a checkpoint of ``state`` at ``generation``, then compact.

        ``state`` is the service's JSON/pickle-safe base payload (the
        snapshot envelope plus the base database's rows — see
        :meth:`~repro.service.facade.ViewService` wiring); the WAL wraps
        it in its own versioned envelope.  The checkpoint is fully
        durable before the manifest references it; retention then drops
        checkpoints beyond ``keep_checkpoints``, advances the replay
        floor to the oldest kept one, and deletes segments wholly below
        the floor.
        """
        self._check_writable()
        if (
            self._checkpoints
            and self._checkpoints[-1]["generation"] == generation
        ):
            return  # idempotent (e.g. a coarse event right after a cut)
        if self.fsync_policy != "os":
            # The log tail must never trail a surviving checkpoint.
            self._fsync_active()
        blob = gzip.compress(
            pickle.dumps(
                {
                    "format": CHECKPOINT_FORMAT,
                    "version": CHECKPOINT_VERSION,
                    "generation": generation,
                    "state": state,
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        )
        name = self._checkpoint_name(generation)
        tmp = self._path(f"tmp-{name}")
        fs = self.fs
        fs.write_bytes(tmp, blob)
        if self.fsync_policy != "os":
            fs.fsync(tmp)
        fs.rename(tmp, self._path(name))
        if self.fsync_policy != "os":
            fs.fsync_dir(self.directory)
        self._checkpoints.append({"name": name, "generation": generation})
        dead: list[str] = []
        while len(self._checkpoints) > self.keep_checkpoints:
            dead.append(self._checkpoints.pop(0)["name"])
        self._floor = self._checkpoints[0]["generation"]
        kept_sealed: list[dict] = []
        for entry in self._sealed:
            if entry["last"] <= self._floor:
                dead.append(entry["name"])
            else:
                kept_sealed.append(entry)
        self._sealed = kept_sealed
        # Manifest first: a crash after the rename leaves the dead files
        # as orphans (cleaned at next open), never dangling references.
        self._write_manifest()
        for name in dead:
            fs.remove(self._path(name))
        self._records = [
            (gen, payload)
            for gen, payload in self._records
            if gen > self._floor or self._covered(gen)
        ]
        self._since_checkpoint = sum(
            1 for gen, _ in self._records if gen > generation
        )
        self.checkpoints_written += 1
        self._m_checkpoints.inc()

    def _covered(self, generation: int) -> bool:
        """Whether a record at ``generation`` is still on disk."""
        if generation > self._floor:
            return True
        return any(entry["last"] >= generation for entry in self._sealed)

    def latest_checkpoint(self) -> dict | None:
        """The newest checkpoint's envelope (``None`` when none exist).

        The returned dict carries ``generation`` and the caller's
        ``state`` payload.  A checkpoint the manifest references but
        cannot be read back raises
        :class:`~repro.errors.WalCheckpointError`.
        """
        if not self._checkpoints:
            return None
        entry = self._checkpoints[-1]
        try:
            payload = pickle.loads(
                gzip.decompress(self.fs.read_bytes(self._path(entry["name"])))
            )
        except Exception as exc:
            raise WalCheckpointError(
                f"checkpoint {entry['name']} (generation "
                f"{entry['generation']}) cannot be read: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CHECKPOINT_FORMAT
            or payload.get("version") != CHECKPOINT_VERSION
            or payload.get("generation") != entry["generation"]
        ):
            raise WalCheckpointError(
                f"checkpoint {entry['name']} does not match the manifest "
                f"(expected {CHECKPOINT_FORMAT}/{CHECKPOINT_VERSION} at "
                f"generation {entry['generation']})"
            )
        return payload

    # -- replay -----------------------------------------------------------------------

    @property
    def has_checkpoint(self) -> bool:
        """Whether the manifest references at least one checkpoint."""
        return bool(self._checkpoints)

    @property
    def floor(self) -> int:
        """Oldest generation replayable from this log (compaction bound)."""
        return self._floor

    @property
    def last_generation(self) -> int:
        """Generation of the newest logged record (or checkpoint)."""
        return self._last_generation

    def records_since(self, generation: int) -> list[tuple[int, dict]]:
        """Every logged record after ``generation``, in commit order.

        Each item is ``(generation, payload)`` where the payload carries
        the event wire dict plus the encoded ΔR.  A resume point below
        the replay floor raises :class:`~repro.errors.ReplayGapError`
        whose ``oldest_available`` names the oldest live checkpoint.
        """
        if generation < self._floor:
            raise ReplayGapError(since=generation, floor=self._floor)
        return [
            (gen, payload)
            for gen, payload in self._records
            if gen > generation
        ]

    def events_since(self, generation: int) -> list[ViewEvent]:
        """The logged *events* after ``generation`` (wire-form decode).

        What the changefeed hub replays for a durable consumer whose
        resume point has dropped below the in-memory buffer's floor.
        The decoded events carry only wire fields (no closure deltas,
        no ΔR) — exactly what a replayed consumer would have seen live.
        """
        return [
            ViewEvent.from_dict(payload["event"])
            for _, payload in self.records_since(generation)
        ]

    # -- diagnostics -------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe log statistics (for ``service.stats()['wal']``)."""
        return {
            "directory": self.directory,
            "fsync": self.fsync_policy,
            "segments": len(self._sealed) + 1,
            "active_segment": self._active,
            "active_bytes": self._active_size,
            "records": len(self._records),
            "records_appended": self.records_appended,
            "fsyncs": self.fsyncs,
            "rotations": self.rotations,
            "checkpoints": [
                dict(entry) for entry in self._checkpoints
            ],
            "checkpoints_written": self.checkpoints_written,
            "floor": self._floor,
            "last_generation": self._last_generation,
            "torn_dropped": self.torn_dropped,
        }

    def close(self) -> None:
        """Flush the tail per policy and release descriptors (idempotent)."""
        if not self.readonly and self.fsync_policy != "os":
            if self.fs.exists(self._path(self._active)):
                self._fsync_active()
        close = getattr(self.fs, "close", None)
        if close is not None:
            close()
