"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  The hierarchy mirrors the paper's
processing pipeline: schema/engine errors, parsing errors, validation
rejections, side-effect aborts, and untranslatable updates.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A relational schema was malformed or used inconsistently."""


class KeyConstraintError(ReproError):
    """A primary-key constraint was violated by an insertion."""


class UnknownRelationError(ReproError):
    """A query or update referenced a relation not present in the database."""


class QueryError(ReproError):
    """An SPJ query was malformed (unknown alias/attribute, bad predicate)."""


class MissingDependencyError(ReproError):
    """An optional dependency required by the requested feature is absent.

    Raised e.g. when ``index_backend="matrix"`` is requested but NumPy is
    not importable.  The message names the missing package and the extra
    that provides it (``pip install repro[fast]``).
    """


class DTDError(ReproError):
    """A DTD was malformed or could not be parsed."""


class XPathSyntaxError(ReproError):
    """An XPath expression in the supported fragment failed to parse."""


class ATGError(ReproError):
    """An attribute translation grammar definition is inconsistent."""


class ValidationError(ReproError):
    """Static DTD validation rejected an update (paper, Section 2.4)."""


class SideEffectError(ReproError):
    """An update has XML side effects and the policy is to abort.

    The offending nodes are available on :attr:`affected`.
    """

    def __init__(self, message: str, affected: frozenset[int] = frozenset()):
        super().__init__(message)
        self.affected = affected


class UpdateRejectedError(ReproError):
    """The relational translation rejected the view update.

    Raised when Algorithm delete finds no side-effect-free source for some
    view tuple, or when Algorithm insert's encoding is unsatisfiable (or
    detects an unconditional side effect).
    """


class OpDecodeError(ReproError):
    """A wire-format update operation (dict / JSON) was malformed."""


class PlanError(ReproError):
    """The plan/commit protocol was violated.

    Raised when a second plan is opened while one is outstanding, or when
    ``commit()``/``abort()`` is called on a plan that is not in the
    required state.
    """


class StalePlanError(PlanError):
    """The view changed between ``plan()`` and ``commit()``.

    A plan captures ΔV/ΔR against one store snapshot; any intervening
    mutation (another update, a base-table propagation, a batch flush)
    invalidates it.  Re-plan against the current state.
    """


class CycleError(ReproError):
    """The published view graph contains a cycle (cannot unfold to a tree)."""


class ChangefeedError(ReproError):
    """The changefeed consumer protocol was violated.

    Raised for malformed ``since`` arguments (a generation ahead of the
    feed), pull calls on a callback-mode consumer, and reads from a
    closed consumer where an error (rather than an end-of-stream
    sentinel) is the contract.
    """


class ReplayGapError(ChangefeedError):
    """A changefeed resume point is older than the retained history.

    The replay buffer is bounded: once events are evicted, a consumer
    asking to resume from a generation before :attr:`floor` cannot be
    given a complete stream, and silently skipping events would corrupt
    any replica folding them.  Catch this and re-bootstrap from a fresh
    snapshot instead.

    The boundary is machine-readable: :attr:`oldest_available` (an alias
    of :attr:`floor`) is the oldest generation a fresh
    ``changefeed(since=...)`` can still resume from, so a replica's
    re-bootstrap path can request "a snapshot at generation >=
    oldest_available" without parsing the message.
    """

    def __init__(self, since: int, floor: int):
        super().__init__(
            f"cannot replay from generation {since}: events up to "
            f"generation {floor} have been evicted from the replay "
            f"buffer; re-bootstrap from a snapshot and resume from "
            f"generation {floor} or later"
        )
        self.since = since
        self.floor = floor
        self.oldest_available = floor
        """Oldest generation still resumable via replay — a snapshot at
        this generation or newer closes the gap."""


class EventDecodeError(ReproError):
    """A wire-format changefeed event (dict / JSON) was malformed."""


class WalError(ReproError):
    """Base class for the durable changefeed log (:mod:`repro.wal`)."""


class WalCorruptionError(WalError):
    """A WAL segment or manifest failed an integrity check.

    Raised for a CRC/framing failure *inside* a segment (a torn record
    at the very tail of the log is truncated silently instead — only a
    crash mid-append can produce one, and the record was never
    acknowledged), for a sealed segment the manifest references but the
    directory does not contain, and for an unreadable manifest.  The
    failure site is machine-readable: :attr:`segment` names the file
    and :attr:`offset` is the byte offset of the failed record
    (``None`` when the failure is not record-granular).  Recovery from
    interior corruption is manual by design — silently skipping a
    record would replay a stream with a hole in it.
    """

    def __init__(
        self,
        message: str,
        segment: str | None = None,
        offset: int | None = None,
    ):
        super().__init__(message)
        self.segment = segment
        """Name of the segment (or manifest) file that failed."""
        self.offset = offset
        """Byte offset of the failed record within :attr:`segment`
        (``None`` for file-level failures)."""


class WalCheckpointError(WalError):
    """A checkpoint the manifest references is missing or unreadable.

    Checkpoints are written atomically (tmp + fsync + rename) *before*
    the manifest starts referencing them, so a mismatch means the
    directory was tampered with or the files landed on storage that
    reorders renames across sync boundaries.  Replay cannot start
    without its base state; recovery is manual.
    """


class ReplicaError(ReproError):
    """Base class for the replication subsystem (:mod:`repro.replica`)."""


class SnapshotError(ReplicaError):
    """A snapshot artifact was malformed, unreadable, or inconsistent."""


class SnapshotSchemaError(SnapshotError):
    """A snapshot artifact speaks a different snapshot-schema version.

    Loading refuses rather than guessing; re-create the snapshot with the
    library version that will load it.  The versions involved ride on
    :attr:`found` and :attr:`expected`.
    """

    def __init__(self, found, expected: int):
        super().__init__(
            f"snapshot artifact has schema version {found!r}; this "
            f"library speaks snapshot schema version {expected}"
        )
        self.found = found
        self.expected = expected


class SnapshotMismatchError(SnapshotError):
    """A snapshot was produced against a different view definition.

    The artifact embeds a fingerprint of the ATG (DTD + signatures +
    rules) it was taken from; bootstrapping a replica whose own ATG
    fingerprint differs would fold events into the wrong schema.
    """


class ReplicaStaleError(ReplicaError):
    """The replica can no longer fold the feed and must re-bootstrap.

    Raised when a coarse event arrives (the edge list does not describe
    the change — e.g. a store rebuild) or when the feed was lost past the
    retention window.  Recovery is always the same: fetch a fresh
    snapshot and re-attach (``ReplicaView.bootstrap()``).
    """


class ReplicaDivergedError(ReplicaError):
    """An event referenced state the replica does not have.

    Folding is strict: an insert for an unknown node id, or a delete for
    an edge that is not present, means the replica's mirror has drifted
    from the writer (a skipped event, a bug) — carrying on would corrupt
    reads silently.  Re-bootstrap from a fresh snapshot.
    """
