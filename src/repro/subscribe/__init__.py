"""Incrementally maintained XPath subscriptions (ΔV-driven).

- :mod:`repro.subscribe.delta` — the structured per-commit event model
  (:class:`ViewEvent` / :class:`EdgeRecord`);
- :mod:`repro.subscribe.deps` — per-step dependency extraction from the
  XPath AST, powering skip / suffix-restart decisions;
- :mod:`repro.subscribe.engine` — :class:`Subscription` and the
  :class:`SubscriptionRegistry` commit observer.

Public entry point: :meth:`repro.service.ViewService.subscribe`.
"""

from repro.subscribe.delta import (
    SCHEMA_VERSION,
    EdgeRecord,
    NodeRecord,
    ViewEvent,
    coalesce,
    node_records_for,
)
from repro.subscribe.deps import (
    QueryProfile,
    first_affected_step,
    profile_query,
)
from repro.subscribe.engine import Subscription, SubscriptionRegistry

__all__ = [
    "SCHEMA_VERSION",
    "EdgeRecord",
    "NodeRecord",
    "ViewEvent",
    "coalesce",
    "node_records_for",
    "QueryProfile",
    "first_affected_step",
    "profile_query",
    "Subscription",
    "SubscriptionRegistry",
]
