"""Incrementally maintained XPath subscriptions over one published view.

``service.subscribe(path)`` evaluates ``path`` once, eagerly, and from
then on the :class:`SubscriptionRegistry` — registered as a commit
observer on the updater — keeps the result current by consuming the
structured ΔV events every committed operation emits
(:mod:`repro.subscribe.delta`).  Per event and per subscription the
registry picks the cheapest sound action:

- **skip** — no event edge intersects any step's dependency map
  (:mod:`repro.subscribe.deps`): the cached result is provably current,
  only the generation tag advances;
- **suffix re-evaluation** — the earliest affected step is ``k > 0``:
  contexts ``C_0 .. C_k`` are intact, so only ``steps[k:]`` re-runs
  from the cached ``C_k`` (:meth:`DagXPathEvaluator.evaluate_from`);
- **full re-evaluation** — the event is coarse (base-update
  propagation, rebuilds), step 0 is affected, or no contexts are
  cached.

Every subscription is generation-tagged with the updater's version
counter.  :meth:`Subscription.result` compares tags before answering
and falls back to a full re-evaluation on any mismatch — a missed or
deferred event (e.g. reading mid-batch) degrades to correct-but-slower,
never to stale data.  Maintenance runs inside the writer's critical
section (the service write lock); ``result()`` takes the read side.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import nullcontext

from repro.subscribe.delta import ViewEvent, coalesce
from repro.subscribe.deps import (
    QueryProfile,
    first_affected_step,
    profile_query,
)
from repro.xpath.ast import XPath
from repro.xpath.parser import parse_xpath

_STAT_KEYS = (
    "skips",
    "suffix_refreshes",
    "full_refreshes",
    "fallback_refreshes",
)


class Subscription:
    """One registered XPath with an incrementally maintained result."""

    def __init__(
        self,
        sid: int,
        text: str,
        path: XPath,
        profile: QueryProfile,
        registry: "SubscriptionRegistry",
    ):
        self.id = sid
        self.path = text
        self.query = path
        self.profile = profile
        self.active = True
        self.stats: dict[str, int] = dict.fromkeys(_STAT_KEYS, 0)
        self._registry = registry
        self._mutex = threading.Lock()
        self._generation = -1
        self._nodes: tuple[int, ...] = ()
        self._contexts: list[list[int]] | None = None
        self._context_sets: list[frozenset] | None = None

    @property
    def generation(self) -> int:
        return self._generation

    def result(self) -> tuple[int, ...]:
        """The current result set as a sorted tuple of view node ids.

        Equal — after every committed operation — to
        ``tuple(sorted(service.xpath(self.path).targets))``; stale
        generations trigger an inline full re-evaluation first.
        """
        return self._registry.result_of(self)

    def close(self) -> None:
        """Stop maintaining this subscription (idempotent)."""
        self._registry.unsubscribe(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Subscription(#{self.id} {self.path!r} gen={self._generation} "
            f"|result|={len(self._nodes)})"
        )


class SubscriptionRegistry:
    """All subscriptions of one view; consumes the commit event stream."""

    def __init__(self, updater, lock=None):
        self.updater = updater
        self._lock = lock
        self._subs: list[Subscription] = []
        self._members = threading.Lock()
        self._buffer: list[ViewEvent] = []
        self._ids = itertools.count(1)
        self._registered = False
        self._closed_totals: dict[str, int] = dict.fromkeys(_STAT_KEYS, 0)
        self.events_processed = 0
        self.events_buffered = 0
        self.publish_seconds = 0.0

    # -- registration ------------------------------------------------------------

    def subscribe(self, path: str | XPath) -> Subscription:
        """Register ``path`` and evaluate it eagerly.

        Callers must hold the writer side of the service lock (the
        :class:`~repro.service.facade.ViewService` façade does) so
        registration is serialized against commits.
        """
        parsed = parse_xpath(path) if isinstance(path, str) else path
        store = self.updater.store
        root_label = (
            store.type_of(store.root_id)
            if store.root_id is not None
            else None
        )
        sub = Subscription(
            next(self._ids), str(parsed) or ".", parsed,
            profile_query(parsed, root_label), self,
        )
        with sub._mutex:
            self._refresh_full(sub)
            sub._generation = self.updater._version
        with self._members:
            if not self._registered:
                # Lazy observer hookup: commits only pay the event
                # construction cost once someone actually subscribes.
                self.updater.add_observer(self.handle)
                self._registered = True
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        with self._members:
            sub.active = False
            if sub in self._subs:
                self._subs.remove(sub)
                # Keep the registry-level counters monotonic: fold the
                # closed subscription's tallies into the totals.
                for key in _STAT_KEYS:
                    self._closed_totals[key] += sub.stats[key]
            if not self._subs and self._registered:
                # Last subscription gone: unhook so commits stop paying
                # the event-construction cost.
                self.updater.remove_observer(self.handle)
                self._registered = False
                self._buffer.clear()

    def __len__(self) -> int:
        return len(self._subs)

    def __iter__(self):
        return iter(list(self._subs))

    # -- the maintenance path (writer's critical section) --------------------------

    def handle(self, event: ViewEvent) -> None:
        """Commit observer: maintain every subscription against ``event``.

        Deferred (mid-batch) events are buffered and coalesced with the
        session's flush event — the store's edges are already current
        mid-batch, but ``M`` is not, so refreshing once per batch is
        both cheaper and reads the repaired index.
        """
        if event.deferred:
            if self._subs:
                self._buffer.append(event)
                self.events_buffered += 1
            return
        if self._buffer:
            self._buffer.append(event)
            event = coalesce(self._buffer)
            self._buffer.clear()
        if not self._subs:
            return
        start = time.perf_counter()
        for sub in list(self._subs):
            with sub._mutex:
                self._apply_event(sub, event)
        self.publish_seconds += time.perf_counter() - start
        self.events_processed += 1

    def _apply_event(self, sub: Subscription, event: ViewEvent) -> None:
        k = first_affected_step(sub.profile, event, sub._context_sets)
        if k is None:
            sub.stats["skips"] += 1
        elif k == 0 or sub._contexts is None or len(sub._contexts) <= k:
            # (coarse events arrive as k == 0.)
            self._refresh_full(sub)
            sub.stats["full_refreshes"] += 1
        else:
            self._refresh_suffix(sub, k)
            sub.stats["suffix_refreshes"] += 1
        sub._generation = event.generation

    def _refresh_full(self, sub: Subscription) -> None:
        result = self.updater.evaluator().evaluate_from(sub.query)
        sub._contexts = [list(c) for c in result.contexts]
        sub._context_sets = [frozenset(c) for c in sub._contexts]
        sub._nodes = tuple(sorted(result.targets))

    def _refresh_suffix(self, sub: Subscription, k: int) -> None:
        assert sub._contexts is not None and len(sub._contexts) > k
        suffix = XPath(sub.query.steps[k:])
        result = self.updater.evaluator().evaluate_from(
            suffix, start=list(sub._contexts[k])
        )
        sub._contexts = [
            *sub._contexts[: k + 1],
            *[list(c) for c in result.contexts[1:]],
        ]
        assert sub._context_sets is not None
        sub._context_sets = [
            *sub._context_sets[: k + 1],
            *[frozenset(c) for c in result.contexts[1:]],
        ]
        sub._nodes = tuple(sorted(result.targets))

    # -- the read path --------------------------------------------------------------

    def _read(self):
        return self._lock.read() if self._lock is not None else nullcontext()

    def result_of(self, sub: Subscription) -> tuple[int, ...]:
        with self._read():
            with sub._mutex:
                if sub._generation != self.updater._version:
                    # Generation-tagged fallback: a missed/deferred event
                    # (mid-batch reads, observer-less direct use) costs a
                    # full re-evaluation, never staleness.
                    self._refresh_full(sub)
                    sub._generation = self.updater._version
                    sub.stats["fallback_refreshes"] += 1
                return sub._nodes

    # -- statistics ------------------------------------------------------------------

    def stats(self) -> dict:
        totals = dict(self._closed_totals)
        for sub in list(self._subs):
            for key in _STAT_KEYS:
                totals[key] += sub.stats[key]
        return {
            "subscriptions": len(self._subs),
            "events_processed": self.events_processed,
            "events_buffered": self.events_buffered,
            "publish_seconds": self.publish_seconds,
            **totals,
        }
