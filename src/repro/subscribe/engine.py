"""Incrementally maintained XPath subscriptions over one published view.

``service.subscribe(path)`` evaluates ``path`` once, eagerly, and from
then on the :class:`SubscriptionRegistry` — registered as a commit
observer on the updater — keeps the result current by consuming the
structured ΔV events every committed operation emits
(:mod:`repro.subscribe.delta`).  Per event and per subscription the
registry picks the cheapest sound action:

- **skip** — no event edge intersects any step's dependency map
  (:mod:`repro.subscribe.deps`): the cached result is provably current,
  only the generation tag advances;
- **suffix re-evaluation** — the earliest affected step is ``k > 0``:
  contexts ``C_0 .. C_k`` are intact, so only ``steps[k:]`` re-runs
  from the cached ``C_k`` (:meth:`DagXPathEvaluator.evaluate_from`);
- **full re-evaluation** — the event is coarse (store rebuilds, or the
  cost-based fallback coarsened an oversized edge list — see
  :data:`DEFAULT_COARSE_THRESHOLD`), step 0 is affected, or no contexts
  are cached.  Base-update propagation emits *fine-grained* events
  (typed :class:`~repro.atg.incremental.PropagationReport` records), so
  the same pruning applies to the reverse pipeline.

Alongside the full result set, each maintenance action derives the
per-commit **result delta** from the old/new tuples the registry
already holds: :meth:`Subscription.delta` returns ``(added, removed)``
node ids at near-zero cost.

Every subscription is generation-tagged with the updater's version
counter.  :meth:`Subscription.result` compares tags before answering
and falls back to a full re-evaluation on any mismatch — a missed or
deferred event (e.g. reading mid-batch) degrades to correct-but-slower,
never to stale data.  Maintenance runs inside the writer's critical
section (the service write lock); ``result()`` takes the read side.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import nullcontext

from repro.subscribe.delta import ViewEvent, coalesce
from repro.subscribe.deps import (
    QueryProfile,
    first_affected_step,
    profile_query,
)
from repro.xpath.ast import DescendantStep, XPath
from repro.xpath.parser import parse_xpath

_STAT_KEYS = (
    "skips",
    "suffix_refreshes",
    "full_refreshes",
    "fallback_refreshes",
    "coarse_fallbacks",
    "closure_patches",
)

#: Above this many edges in one event, scanning every subscription's
#: per-step patterns against every edge costs more than simply
#: re-evaluating, so the registry degrades the event to coarse.  The
#: default is calibrated by ``benchmarks/test_coarse_fallback.py``
#: (measured crossover ≈ 512 worst-case edges at 16 standing queries,
#: recorded in ``BENCH_index.json``; the default sits below it because
#: real events match patterns and re-evaluate some queries either way).
#: Override per service via ``ViewConfig(coarse_event_threshold=...)``.
DEFAULT_COARSE_THRESHOLD = 256


class Subscription:
    """One registered XPath with an incrementally maintained result."""

    def __init__(
        self,
        sid: int,
        text: str,
        path: XPath,
        profile: QueryProfile,
        registry: "SubscriptionRegistry",
    ):
        self.id = sid
        self.path = text
        self.query = path
        self.profile = profile
        self.active = True
        self._stats: dict[str, int] = dict.fromkeys(_STAT_KEYS, 0)
        self._registry = registry
        self._mutex = threading.Lock()
        self._generation = -1
        self._ledger_mark = 0
        """Registry skip-ledger position this subscription has folded
        in; events past the mark were lazy skips (see
        :meth:`SubscriptionRegistry.apply_batched`)."""
        self._watched: frozenset | None = None
        """Nodes whose outgoing-edge changes could affect this
        subscription (the union of the cached contexts its in-context
        patterns are sharpened against), or ``None`` when membership
        sharpening cannot cover every pattern (``//``/wildcard
        dependencies, deep filter chains, no cached contexts) and the
        type-level candidate pass must always consider it."""
        self._nodes: tuple[int, ...] = ()
        self._delta: tuple[tuple[int, ...], tuple[int, ...]] = ((), ())
        self._contexts: list[list[int]] | None = None
        self._context_sets: list[frozenset] | None = None
        self._closure_consumer = False
        """True while this (leading-``//``) subscription holds a slot in
        ``updater.closure_consumers``."""

    @property
    def stats(self) -> dict[str, int]:
        """Maintenance-action counters (one key per :data:`_STAT_KEYS`).

        Reading folds in any skips the batched maintenance pass
        accounted lazily, so the counters are always exact at the
        caller's read.
        """
        self._registry.sync(self)
        return self._stats

    @property
    def generation(self) -> int:
        """The updater generation this subscription's cache reflects."""
        self._registry.sync(self)
        return self._generation

    def result(self) -> tuple[int, ...]:
        """The current result set as a sorted tuple of view node ids.

        Equal — after every committed operation — to
        ``tuple(sorted(service.xpath(self.path).targets))``; stale
        generations trigger an inline full re-evaluation first.
        """
        return self._registry.result_of(self)

    def delta(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """``(added, removed)`` node ids of the most recent commit.

        Derived in the registry from the old/new result tuples it
        already holds, so the watcher pattern — "tell me what changed,
        not the whole set" — costs nothing extra.  Both tuples are
        sorted; a commit that did not move this result yields
        ``((), ())``, as does a freshly registered subscription.  Reads
        carry the same freshness guarantee as :meth:`result`: a stale
        generation triggers an inline refresh first, and the delta then
        spans everything since the last refreshed generation.
        """
        return self._registry.delta_of(self)

    def close(self) -> None:
        """Stop maintaining this subscription (idempotent)."""
        self._registry.unsubscribe(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Subscription(#{self.id} {self.path!r} gen={self._generation} "
            f"|result|={len(self._nodes)})"
        )


class _PatternIndex:
    """Inverted index over subscription edge patterns.

    Maps a typed event edge to the subscriptions whose
    :class:`~repro.subscribe.deps.QueryProfile` could possibly be
    affected by it, so one event probes a handful of hash buckets
    instead of scanning every pattern of every subscription
    (:meth:`SubscriptionRegistry.apply_batched`).  The candidate set is
    a strict superset of the subscriptions whose
    :func:`~repro.subscribe.deps.first_affected_step` is non-``None``:
    it reproduces the type/value tests of
    :meth:`~repro.subscribe.deps.EdgePattern.matches` exactly and
    ignores only the (purely narrowing) node-membership sharpening, so
    skipping a non-candidate is always sound.

    Buckets are keyed by ``(parent label, child label)`` with ``None``
    components for wildcards; a subscription with a fully wildcard
    pattern anywhere (``*``/``//`` steps, ``//`` inside a filter) is an
    always-candidate.  Value-constrained patterns index per value; an
    event edge with an *unknown* child value conservatively matches all
    of them (same rule as ``EdgePattern.matches``).
    """

    def __init__(self):
        self._always: set[Subscription] = set()
        self._buckets: dict[tuple, dict] = {}
        self._entries: dict[Subscription, list[tuple]] = {}

    def add(self, sub: Subscription) -> None:
        """Index every per-step pattern of ``sub``."""
        entries: list[tuple] = []
        always = False
        for deps in sub.profile.per_step:
            for pat in deps:
                if pat.parent is None and pat.child is None:
                    always = True
                elif pat.values is None:
                    entries.append(((pat.parent, pat.child), None))
                else:
                    entries.extend(
                        ((pat.parent, pat.child), value)
                        for value in pat.values
                    )
        if always:
            # Any fine event can touch it; typed entries are redundant.
            self._always.add(sub)
            self._entries[sub] = []
            return
        self._entries[sub] = entries
        for key, value in entries:
            bucket = self._buckets.setdefault(
                key, {"any": set(), "valued": set(), "by_value": {}}
            )
            if value is None:
                bucket["any"].add(sub)
            else:
                bucket["valued"].add(sub)
                bucket["by_value"].setdefault(value, set()).add(sub)

    def discard(self, sub: Subscription) -> None:
        """Remove ``sub``'s entries (idempotent)."""
        entries = self._entries.pop(sub, None)
        self._always.discard(sub)
        if not entries:
            return
        for key, value in entries:
            bucket = self._buckets.get(key)
            if bucket is None:
                continue
            if value is None:
                bucket["any"].discard(sub)
            else:
                bucket["valued"].discard(sub)
                values = bucket["by_value"].get(value)
                if values is not None:
                    values.discard(sub)
                    if not values:
                        del bucket["by_value"][value]
            if not (bucket["any"] or bucket["valued"]):
                del self._buckets[key]

    def candidates(self, event: ViewEvent) -> set[Subscription]:
        """Subscriptions that may be affected by ``event``'s edges."""
        found: set[Subscription] = set(self._always)
        buckets = self._buckets
        for rec in event.edges:
            for key in (
                (rec.parent_type, rec.child_type),
                (rec.parent_type, None),
                (None, rec.child_type),
            ):
                bucket = buckets.get(key)
                if bucket is None:
                    continue
                found |= bucket["any"]
                if rec.child_value is None:
                    found |= bucket["valued"]
                else:
                    found |= bucket["by_value"].get(rec.child_value, set())
        return found


class SubscriptionRegistry:
    """All subscriptions of one view; consumes the commit event stream."""

    def __init__(self, updater, lock=None, coarse_threshold: int | None = None,
                 metrics=None):
        from repro.metrics import NULL_METRICS

        metrics = metrics if metrics is not None else NULL_METRICS
        self.updater = updater
        self._m_events = metrics.counter(
            "repro_subscription_events_total",
            "Commit events processed by the subscription registry "
            "(coalesced batches count once).",
        )
        self._m_events.inc(0)  # materialize at 0 in the exposition
        self._lock = lock
        self._subs: list[Subscription] = []
        self._patterns = _PatternIndex()
        self._members = threading.Lock()
        self._buffer: list[ViewEvent] = []
        self._ids = itertools.count(1)
        self._registered = False
        self._pinned = False
        self._closed_totals: dict[str, int] = dict.fromkeys(_STAT_KEYS, 0)
        self.coarse_threshold = (
            DEFAULT_COARSE_THRESHOLD
            if coarse_threshold is None
            else coarse_threshold
        )
        """Cost-based fallback: events carrying more edges than this are
        handled as coarse (one full re-evaluation per subscription)
        instead of being scanned edge-by-edge against every pattern."""
        self.events_processed = 0
        self.events_buffered = 0
        self.publish_seconds = 0.0
        self._ledger_events = 0
        """Events accounted through :meth:`apply_batched`.  A
        subscription whose ``_ledger_mark`` trails this count was a
        non-candidate for every event in between — each one a *lazy
        skip*, folded into its visible state on the next read (or the
        next time it is a candidate)."""
        self._ledger_gen = -1
        """Generation of the last batched event (what a lazy skip
        fast-forwards ``_generation`` to)."""
        self._watchers: dict[int, set[Subscription]] = {}
        """Node-level inverted watch index: node id → the
        fully-sharpenable subscriptions with that node in a watched
        context (see :attr:`Subscription._watched`).  Guarded by
        ``self._members``; rebuilt per subscription whenever a
        maintenance action refreshes its contexts."""

    # -- registration ------------------------------------------------------------

    def ensure_registered(self, pin: bool = False) -> None:
        """Hook the registry onto the updater's commit observer list.

        Normally lazy (the first :meth:`subscribe` does it); the service
        façade calls this with ``pin=True`` before attaching the
        changefeed hub, so that registry maintenance always runs *before*
        changefeed delivery — a changefeed callback then observes
        subscriptions already consistent with the event it receives.  A
        pinned registry never unhooks, keeping that ordering stable.
        """
        with self._members:
            self._ensure_registered_locked(pin)

    def _ensure_registered_locked(self, pin: bool) -> None:
        """The hookup itself; callers hold ``self._members``."""
        self._pinned = self._pinned or pin
        if not self._registered:
            self.updater.add_observer(self.handle)
            self._registered = True

    def subscribe(self, path: str | XPath) -> Subscription:
        """Register ``path`` and evaluate it eagerly.

        Callers must hold the writer side of the service lock (the
        :class:`~repro.service.facade.ViewService` façade does) so
        registration is serialized against commits.
        """
        parsed = parse_xpath(path) if isinstance(path, str) else path
        store = self.updater.store
        root_label = (
            store.type_of(store.root_id)
            if store.root_id is not None
            else None
        )
        sub = Subscription(
            next(self._ids), str(parsed) or ".", parsed,
            profile_query(parsed, root_label), self,
        )
        if parsed.steps and isinstance(parsed.steps[0], DescendantStep):
            # A leading-``//`` query can be maintained from closure
            # pair-deltas; tell the updater someone wants them captured
            # (``capture_closure_deltas='auto'`` keys off this count).
            sub._closure_consumer = True
            self.updater.closure_consumers += 1
        with sub._mutex:
            self._refresh_full(sub)
            sub._generation = self.updater._version
            # Events before registration are not this sub's skips.
            sub._ledger_mark = self._ledger_events
            self._reindex_watch(sub)
        with self._members:
            # Lazy observer hookup: commits only pay the event
            # construction cost once someone actually subscribes (or a
            # changefeed pins).  One critical section for hookup +
            # append, so a concurrent close() of the last other
            # subscription cannot unhook between the two.
            self._ensure_registered_locked(pin=False)
            self._subs.append(sub)
            self._patterns.add(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Drop ``sub`` from maintenance (idempotent; folds its stats)."""
        # Fold pending lazy skips before touching membership state —
        # and outside ``_members``, which is only ever taken *after* a
        # subscription mutex, never around one.
        with sub._mutex:
            self._sync_locked(sub)
            watched, sub._watched = sub._watched, None
        with self._members:
            sub.active = False
            if sub._closure_consumer:
                sub._closure_consumer = False
                self.updater.closure_consumers -= 1
            self._patterns.discard(sub)
            if watched:
                self._drop_watchers(sub, watched)
            if sub in self._subs:
                self._subs.remove(sub)
                # Keep the registry-level counters monotonic: fold the
                # closed subscription's tallies into the totals.
                for key in _STAT_KEYS:
                    self._closed_totals[key] += sub._stats[key]
            if not self._subs and self._registered and not self._pinned:
                # Last subscription gone: unhook so commits stop paying
                # the event-construction cost.  (A registry pinned by a
                # changefeed stays hooked to keep observer order stable.)
                self.updater.remove_observer(self.handle)
                self._registered = False
                self._buffer.clear()

    def __len__(self) -> int:
        return len(self._subs)

    def __iter__(self):
        return iter(list(self._subs))

    # -- the maintenance path (writer's critical section) --------------------------

    def handle(self, event: ViewEvent) -> None:
        """Commit observer: maintain every subscription against ``event``.

        Deferred (mid-batch) events are buffered and coalesced with the
        session's flush event — the store's edges are already current
        mid-batch, but ``M`` is not, so refreshing once per batch is
        both cheaper and reads the repaired index.
        """
        if event.deferred:
            if self._subs:
                self._buffer.append(event)
                self.events_buffered += 1
            return
        if self._buffer:
            self._buffer.append(event)
            event = coalesce(self._buffer)
            self._buffer.clear()
        if not self._subs:
            return
        if not event.coarse and len(event.edges) > self.coarse_threshold:
            # Cost-based fallback: scanning a huge edge list (bulk
            # batches, wide base propagations) against every pattern of
            # every subscription costs more than one re-evaluation each.
            event = ViewEvent(
                generation=event.generation,
                coarse=True,
                reason=f"cost_fallback({event.reason})",
            )
            for sub in list(self._subs):
                sub._stats["coarse_fallbacks"] += 1
        start = time.perf_counter()
        for sub in list(self._subs):
            with sub._mutex:
                self._sync_locked(sub)
                if self._apply_event(sub, event):
                    self._reindex_watch(sub)
        self.publish_seconds += time.perf_counter() - start
        self.events_processed += 1
        self._m_events.inc()

    def apply_batched(self, event: ViewEvent) -> None:
        """The staged pipeline's maintain phase: one batched decision pass.

        Semantically identical to :meth:`handle` on an at-rest event —
        every subscription ends at the same generation with the same
        result, delta and stats — but the per-subscription decision is
        batched: the :class:`_PatternIndex` maps the event's edges to
        the candidate subscriptions in one probe per typed edge, and
        the non-candidates — however many — are accounted with **one**
        ledger bump (a *lazy skip*): their ``skips`` counter, empty
        delta and generation tag materialize on the next read via
        :meth:`sync`.  Candidates run the ordinary per-subscription
        action (:meth:`_apply_event` — which may still conclude "skip"
        after membership sharpening).  Coarse events (and the
        cost-based fallback) touch every subscription, exactly as
        before.  Cost per event: O(edges + candidates), independent of
        the total subscription count.

        The caller (:class:`~repro.service.pipeline.CommitPipeline`)
        holds the write lock and passes the *sealed* event — batches
        arrive already coalesced, so the deferred-event buffer is not
        consulted.
        """
        with self._members:
            subs = list(self._subs)
        if not subs:
            return
        start = time.perf_counter()
        if not event.coarse and len(event.edges) > self.coarse_threshold:
            event = ViewEvent(
                generation=event.generation,
                coarse=True,
                reason=f"cost_fallback({event.reason})",
            )
            for sub in subs:
                sub._stats["coarse_fallbacks"] += 1
        if event.coarse:
            touched = subs
        else:
            with self._members:
                candidates = self._patterns.candidates(event)
                if candidates:
                    # Node-level sharpening on top of the type/value
                    # buckets: a fully-sharpenable subscription is only
                    # a candidate when some edge hangs off a node it
                    # actually watches (exactly the membership test
                    # first_affected_step would apply per edge).
                    watchers = self._watchers
                    hit: set[Subscription] = set()
                    for rec in event.edges:
                        bucket = watchers.get(rec.parent)
                        if bucket:
                            hit |= bucket
                    candidates = {
                        sub for sub in candidates
                        if sub._watched is None or sub in hit
                    }
            touched = [sub for sub in subs if sub in candidates]
        for sub in touched:
            with sub._mutex:
                self._sync_locked(sub)
                if self._apply_event(sub, event):
                    self._reindex_watch(sub)
                # Current through this event; the ledger bump below
                # must not read as a pending skip.
                sub._ledger_mark = self._ledger_events + 1
        # Every untouched subscription skipped this event; account all
        # of them in O(1) — their counters/generation catch up on read.
        self._ledger_events += 1
        self._ledger_gen = event.generation
        self.publish_seconds += time.perf_counter() - start
        self.events_processed += 1
        self._m_events.inc()

    # -- the lazy skip ledger -------------------------------------------------------

    def sync(self, sub: Subscription) -> None:
        """Fold ``sub``'s pending lazy skips into its visible state."""
        if sub._ledger_mark == self._ledger_events:
            return
        with sub._mutex:
            self._sync_locked(sub)

    def _sync_locked(self, sub: Subscription) -> None:
        """:meth:`sync` body; callers hold ``sub._mutex``."""
        pending = self._ledger_events - sub._ledger_mark
        if pending > 0:
            sub._stats["skips"] += pending
            sub._delta = ((), ())
            sub._generation = self._ledger_gen
        sub._ledger_mark = self._ledger_events

    # -- the node-level watch index ---------------------------------------------------

    def _watch_nodes(self, sub: Subscription) -> frozenset | None:
        """Nodes ``sub``'s candidacy can be sharpened to, or ``None``.

        Mirrors :func:`~repro.subscribe.deps.first_affected_step`'s
        membership test exactly: an ``in_context`` pattern at step ``k``
        only fires through an edge whose parent is in the cached
        ``context_sets[k]``.  When *every* pattern of every step is
        sharpened that way, the union of those context sets is the
        complete set of nodes whose outgoing edges can matter.  Any
        unsharpened pattern (``in_region`` — the region can be huge,
        ``in_context=False`` — deep filter-chain edges, a pattern index
        beyond the cached contexts, or no cache at all) returns
        ``None``: the subscription must stay a candidate whenever its
        type/value buckets match.
        """
        context_sets = sub._context_sets
        if context_sets is None:
            return None
        watched: set = set()
        for index, deps in enumerate(sub.profile.per_step):
            for pattern in deps:
                if not pattern.in_context or pattern.in_region:
                    return None
                if index >= len(context_sets):
                    return None
                watched |= context_sets[index]
        return frozenset(watched)

    def _reindex_watch(self, sub: Subscription) -> None:
        """Re-derive ``sub``'s watch set after a context refresh.

        Callers hold ``sub._mutex``; the shared index itself is guarded
        by ``_members`` (taken inside the mutex — the registry-wide
        lock order).
        """
        new = self._watch_nodes(sub)
        old = sub._watched
        if new == old:
            return
        with self._members:
            if old:
                self._drop_watchers(sub, old)
            if new:
                watchers = self._watchers
                for node in new:
                    bucket = watchers.get(node)
                    if bucket is None:
                        watchers[node] = {sub}
                    else:
                        bucket.add(sub)
        sub._watched = new

    def _drop_watchers(self, sub: Subscription, watched: frozenset) -> None:
        """Remove ``sub``'s entries; callers hold ``_members``."""
        watchers = self._watchers
        for node in watched:
            bucket = watchers.get(node)
            if bucket is not None:
                bucket.discard(sub)
                if not bucket:
                    del watchers[node]

    def _apply_event(self, sub: Subscription, event: ViewEvent) -> bool:
        """One subscription's maintenance action; ``True`` when the
        action (re)built cached contexts — the caller must then refresh
        the subscription's watch-index entries."""
        old = sub._nodes
        k = first_affected_step(sub.profile, event, sub._context_sets)
        if k is None:
            sub._stats["skips"] += 1
            sub._delta = ((), ())
            sub._generation = event.generation
            return False
        action = self._closure_patch(sub, event) if k == 0 else None
        if action is not None:
            sub._stats[action] += 1
        elif k == 0 or sub._contexts is None or len(sub._contexts) <= k:
            # (coarse events arrive as k == 0.)
            self._refresh_full(sub)
            sub._stats["full_refreshes"] += 1
        else:
            self._refresh_suffix(sub, k)
            sub._stats["suffix_refreshes"] += 1
        sub._delta = _diff(old, sub._nodes)
        sub._generation = event.generation
        return True

    def _closure_patch(self, sub: Subscription, event: ViewEvent) -> str | None:
        """Maintain a leading-``//`` subscription from the closure delta.

        A structural event always intersects the ``//`` step's region
        (its context is *every* node), so without help these queries
        re-evaluate fully on each commit — including the descendant
        closure walk the ``//`` step pays.  When the event carries the
        repair's exact closure pair-delta (``event.closure``, see
        ``capture_closure_deltas``), the region change is knowable
        instead: nodes whose ``(root, n)`` pair was added *entered* the
        view (and the region), nodes whose pair was removed *left* (they
        were garbage-collected — a live node is always below the root).
        The patch then

        - drops the departed nodes from every cached context,
        - re-evaluates the remaining steps **only from the entered
          nodes** and merges the partial result in (``closure_patches``),
        - or, when the event also touches a step beyond the ``//``
          (``first_affected_step(start=1)``), falls back to a suffix
          re-evaluation from the deepest intact context — still never
          re-walking the closure (``suffix_refreshes``).

        Returns the stat key of the action taken, or ``None`` when the
        event has no closure delta (or the query does not qualify) and
        the ordinary full re-evaluation must run.
        """
        if event.closure is None:
            return None
        steps = sub.query.steps
        if not steps or not isinstance(steps[0], DescendantStep):
            return None
        contexts, context_sets = sub._contexts, sub._context_sets
        if contexts is None or context_sets is None or len(contexts) < 2:
            return None
        root = self.updater.store.root_id
        if root is None:
            return None
        added_pairs, removed_pairs = event.closure
        entered = {d for a, d in added_pairs if a == root}
        left = {d for a, d in removed_pairs if a == root}
        k2 = first_affected_step(
            sub.profile, event, context_sets, start=1
        )
        if k2 is not None and entered:
            # New chains and damage beyond the ``//`` at once: merging
            # both soundly equals a full pass, so just run one.
            return None
        if left:
            for i in range(1, len(contexts)):
                if left & context_sets[i]:
                    contexts[i] = [n for n in contexts[i] if n not in left]
                    context_sets[i] = frozenset(contexts[i])
            sub._nodes = tuple(n for n in sub._nodes if n not in left)
        if entered:
            contexts[1] = [*contexts[1], *sorted(entered)]
            context_sets[1] = frozenset(contexts[1])
        if k2 is not None:
            self._refresh_suffix(sub, k2)
            return "suffix_refreshes"
        if entered:
            suffix = XPath(steps[1:])
            result = self.updater.evaluator().evaluate_from(
                suffix, start=sorted(entered)
            )
            for j, partial in enumerate(result.contexts[1:], start=2):
                fresh = [n for n in partial if n not in context_sets[j]]
                if fresh:
                    contexts[j] = [*contexts[j], *fresh]
                    context_sets[j] = frozenset(contexts[j])
            if result.targets:
                sub._nodes = tuple(
                    sorted(set(sub._nodes) | set(result.targets))
                )
        return "closure_patches"

    def _refresh_full(self, sub: Subscription) -> None:
        result = self.updater.evaluator().evaluate_from(sub.query)
        sub._contexts = [list(c) for c in result.contexts]
        sub._context_sets = [frozenset(c) for c in sub._contexts]
        sub._nodes = tuple(sorted(result.targets))

    def _refresh_suffix(self, sub: Subscription, k: int) -> None:
        assert sub._contexts is not None and len(sub._contexts) > k
        suffix = XPath(sub.query.steps[k:])
        result = self.updater.evaluator().evaluate_from(
            suffix, start=list(sub._contexts[k])
        )
        sub._contexts = [
            *sub._contexts[: k + 1],
            *[list(c) for c in result.contexts[1:]],
        ]
        assert sub._context_sets is not None
        sub._context_sets = [
            *sub._context_sets[: k + 1],
            *[frozenset(c) for c in result.contexts[1:]],
        ]
        sub._nodes = tuple(sorted(result.targets))

    # -- the read path --------------------------------------------------------------

    def _read(self):
        return self._lock.read() if self._lock is not None else nullcontext()

    def _refresh_if_stale(self, sub: Subscription) -> None:
        """Generation-tagged fallback: a missed/deferred event (mid-batch
        reads, observer-less direct use) costs a full re-evaluation,
        never staleness.  The delta then spans everything since the last
        generation this subscription reflected."""
        if sub._generation != self.updater._version:
            old = sub._nodes
            self._refresh_full(sub)
            sub._delta = _diff(old, sub._nodes)
            sub._generation = self.updater._version
            sub._stats["fallback_refreshes"] += 1
            self._reindex_watch(sub)

    def result_of(self, sub: Subscription) -> tuple[int, ...]:
        """Current result of ``sub`` (see :meth:`Subscription.result`)."""
        with self._read():
            with sub._mutex:
                self._sync_locked(sub)
                self._refresh_if_stale(sub)
                return sub._nodes

    def delta_of(
        self, sub: Subscription
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Last-commit ``(added, removed)`` (see :meth:`Subscription.delta`)."""
        with self._read():
            with sub._mutex:
                self._sync_locked(sub)
                self._refresh_if_stale(sub)
                return sub._delta

    # -- statistics ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-safe registry counters (monotonic across closes)."""
        totals = dict(self._closed_totals)
        for sub in list(self._subs):
            self.sync(sub)  # fold pending lazy skips first
            for key in _STAT_KEYS:
                totals[key] += sub._stats[key]
        return {
            "subscriptions": len(self._subs),
            "events_processed": self.events_processed,
            "events_buffered": self.events_buffered,
            "publish_seconds": self.publish_seconds,
            "coarse_threshold": self.coarse_threshold,
            **totals,
        }


def _diff(
    old: tuple[int, ...], new: tuple[int, ...]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """``(added, removed)`` between two sorted result tuples."""
    if old == new:
        return ((), ())
    old_set, new_set = set(old), set(new)
    return (
        tuple(sorted(new_set - old_set)),
        tuple(sorted(old_set - new_set)),
    )
