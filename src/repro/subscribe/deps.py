"""Per-step dependency extraction for incremental XPath maintenance.

For every AST step of a subscribed path we derive which edge changes can
alter that step's context membership, as a tuple of
:class:`EdgePattern` — typed ``(parent label, child label, child
values)`` templates, each component optionally unconstrained.  The
derivation rests on three invariants of the store model:

- node types and PCDATA values are immutable once interned (gen_id), so
  ``label()`` tests and a context node's own value never change;
- a child-step context's members are reached through edges whose parent
  and child labels are statically known (the previous/current step
  labels; the DTD root label at step 0) — unless the query uses ``*``
  or ``//``, whose steps depend on every edge;
- a ``p = "s"`` comparison only feels edges into the terminal label of
  ``p`` whose child carries the compared value ``s``.

Given a :class:`~repro.subscribe.delta.ViewEvent`,
:func:`first_affected_step` returns the earliest step whose patterns
match an event edge — every context before it is guaranteed unchanged,
so re-evaluation can restart with that step suffix — or ``None`` when
the whole result is provably untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.subscribe.delta import EdgeRecord, ViewEvent
from repro.xpath.ast import (
    DescendantStep,
    ExistsPath,
    FAnd,
    FNot,
    FOr,
    Filter,
    FilterStep,
    LabelStep,
    LabelTest,
    ValueEq,
    WildcardStep,
    XPath,
)

#: Context-type knowledge while walking a path: the set of labels the
#: current context's nodes can have, or ``None`` for "anything".
CtxTypes = frozenset | None


@dataclass(frozen=True)
class EdgePattern:
    """A template over edge changes; ``None`` components match anything."""

    parent: str | None
    child: str | None
    values: frozenset | None = None
    """Child PCDATA values that matter (a value comparison's constant);
    ``None`` = any value.  An event edge with an *unknown* child value
    always matches — pruning stays conservative."""

    in_context: bool = False
    """The relevant edges hang directly off the step's previous context
    ``C_{k-1}`` (the step's own child edges; the *first* edge of a
    filter chain): when the cached context is available, an edge whose
    parent node is not a member cannot affect this step."""

    in_region: bool = False
    """Descendant steps: the relevant edges hang off the step's own
    cached *region* (its output context) — a descendant closure only
    changes through an edge whose parent it already contains."""

    def matches(self, rec: EdgeRecord) -> bool:
        """Whether ``rec`` could invalidate a step depending on this
        pattern (type/value test only; node-membership sharpening is the
        caller's job — see :func:`first_affected_step`)."""
        if self.parent is not None and rec.parent_type != self.parent:
            return False
        if self.child is not None and rec.child_type != self.child:
            return False
        if (
            self.values is not None
            and rec.child_value is not None
            and rec.child_value not in self.values
        ):
            return False
        return True


ANY_EDGE = EdgePattern(None, None)
REGION_EDGE = EdgePattern(None, None, in_region=True)


def _label_patterns(
    label: str, ctx: CtxTypes, values: frozenset | None, at_context: bool
) -> list[EdgePattern]:
    if ctx is None:
        return [EdgePattern(None, label, values, in_context=at_context)]
    return [
        EdgePattern(parent, label, values, in_context=at_context)
        for parent in sorted(ctx)
    ]


def _path_patterns(
    path: XPath,
    ctx: CtxTypes,
    terminal_values: frozenset | None,
    at_context: bool,
) -> list[EdgePattern]:
    """Patterns of a filter-internal relative path.

    ``terminal_values`` restricts the final label's relevant child
    values (a ``p = "s"`` comparison); intermediate chain labels matter
    for any value.  Only the chain's first edge hangs off the step
    context (``at_context``); deeper edges can sit anywhere.
    """
    patterns: list[EdgePattern] = []
    last_label_index = path.last_child_step_index
    for index, step in enumerate(path.steps):
        if isinstance(step, (WildcardStep, DescendantStep)):
            return [ANY_EDGE]
        if isinstance(step, LabelStep):
            values = (
                terminal_values if index == last_label_index else None
            )
            patterns.extend(
                _label_patterns(step.label, ctx, values, at_context)
            )
            ctx = frozenset((step.label,))
            at_context = False
        elif isinstance(step, FilterStep):
            patterns.extend(_filter_patterns(step.filter, ctx, at_context))
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown step {step!r}")
        if any(p == ANY_EDGE for p in patterns):
            return [ANY_EDGE]
    return patterns


def _filter_patterns(
    filt: Filter, ctx: CtxTypes, at_context: bool
) -> list[EdgePattern]:
    if isinstance(filt, LabelTest):
        return []  # node types are immutable: never invalidated
    if isinstance(filt, ExistsPath):
        return _path_patterns(filt.path, ctx, None, at_context)
    if isinstance(filt, ValueEq):
        if not filt.path.steps:
            return []  # the context node's own value is immutable
        return _path_patterns(
            filt.path, ctx, frozenset((filt.value,)), at_context
        )
    if isinstance(filt, (FAnd, FOr)):
        patterns: list[EdgePattern] = []
        for part in filt.parts:
            patterns.extend(_filter_patterns(part, ctx, at_context))
        return patterns
    if isinstance(filt, FNot):
        return _filter_patterns(filt.part, ctx, at_context)
    raise TypeError(f"unknown filter {filt!r}")  # pragma: no cover


@dataclass(frozen=True)
class QueryProfile:
    """The per-step edge-dependency patterns of one subscribed path."""

    path: XPath
    per_step: tuple[tuple[EdgePattern, ...], ...]

    @property
    def prunable(self) -> bool:
        """Whether any event can ever be skipped for this query."""
        return not any(ANY_EDGE in deps for deps in self.per_step)


def profile_query(path: XPath, root_label: str | None = None) -> QueryProfile:
    """Extract per-step dependencies; ``root_label`` (the DTD root's
    element type) tightens the parent constraint of the first step."""
    per_step: list[tuple[EdgePattern, ...]] = []
    ctx: CtxTypes = frozenset((root_label,)) if root_label else None
    for step in path.steps:
        if isinstance(step, LabelStep):
            per_step.append(
                tuple(_label_patterns(step.label, ctx, None, True))
            )
            ctx = frozenset((step.label,))
        elif isinstance(step, WildcardStep):
            per_step.append((EdgePattern(None, None, in_context=True),))
            ctx = None
        elif isinstance(step, DescendantStep):
            per_step.append((REGION_EDGE,))
            ctx = None
        elif isinstance(step, FilterStep):
            per_step.append(
                tuple(_filter_patterns(step.filter, ctx, True))
            )
        else:  # pragma: no cover - exhaustive
            raise TypeError(f"unknown step {step!r}")
    return QueryProfile(path=path, per_step=tuple(per_step))


def first_affected_step(
    profile: QueryProfile,
    event: ViewEvent,
    context_sets: list | None = None,
    start: int = 0,
) -> int | None:
    """Earliest step index ``>= start`` whose context the event may change.

    ``None`` means the subscription's result is provably unchanged;
    ``0`` means nothing can be salvaged (re-evaluate from the root);
    ``k`` means contexts ``C_0 .. C_k`` are intact and evaluation may
    restart with the suffix ``steps[k:]`` from the cached ``C_k``.
    Coarse events always invalidate everything.  ``start`` skips the
    leading steps — the closure-patch path uses it to ask "does the
    event touch anything *beyond* the leading ``//`` step it can patch
    from the closure pair-delta?".

    ``context_sets`` — the cached per-step context membership of the
    subscription's last evaluation (``context_sets[i]`` = members of
    ``C_i``) — sharpens type matches with node membership: an edge can
    only affect step ``k`` through a parent the relevant cached set
    already contains.  The test is inductive and sound because steps
    are scanned in order: by the time step ``k`` is consulted, no
    earlier step matched, so its cached contexts are known-current.
    """
    if event.coarse:
        return 0
    if not event.edges:
        return None
    for index, deps in enumerate(profile.per_step):
        if index < start:
            continue
        if context_sets is not None and index < len(context_sets):
            if not context_sets[index]:
                # The (intact) context before this step is empty: this
                # and every later step keep producing empty contexts,
                # so the (empty) result cannot change.
                return None
        for pattern in deps:
            for rec in event.edges:
                if not pattern.matches(rec):
                    continue
                if context_sets is not None:
                    members = None
                    if pattern.in_region:
                        if index + 1 < len(context_sets):
                            members = context_sets[index + 1]
                    elif pattern.in_context:
                        if index < len(context_sets):
                            members = context_sets[index]
                    if members is not None and rec.parent not in members:
                        continue
                return index
    return None
