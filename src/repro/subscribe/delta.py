"""The structured ΔV event stream consumed by the subscription engine.

Every committed mutation of a published view — foreground ΔV edge
operations, the background Δ(M,L) repair's garbage collection, base
update propagation — is described to subscribers as one
:class:`ViewEvent`: a generation-tagged list of :class:`EdgeRecord`
changes, or a *coarse* event when the publisher cannot (or does not
bother to) describe the change precisely.  Coarse events force a full
re-evaluation of every subscription; fine-grained events let the
per-step dependency analysis of :mod:`repro.subscribe.deps` skip or
partially re-evaluate queries.

Edges are the whole story for this XPath fragment: node types and
string values are immutable once interned (gen_id), the root never
changes, and a node with no incident edges is unreachable — so query
results can only move when an edge appears or disappears.  An
:class:`EdgeRecord` therefore carries the edge's typed endpoints plus
the child's PCDATA value (captured *before* garbage collection frees
the node), which is what value-anchored pruning needs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import EventDecodeError
from repro.relational.database import RelationalDelta
from repro.views.store import ViewDelta, ViewStore

#: Version of the frozen public event wire format (see
#: ``docs/event-schema.md``).  Bumped only on incompatible changes;
#: decoders reject payloads from a different major version.
SCHEMA_VERSION = 1


def _expect(payload: dict, key: str, types, what: str):
    """Pull ``key`` out of ``payload``, validating its JSON type."""
    if key not in payload:
        raise EventDecodeError(f"{what} is missing required key {key!r}")
    value = payload[key]
    # bool subclasses int in Python but not in JSON: `true` is not an id.
    wrong_type = not isinstance(value, types) or (
        types is int and isinstance(value, bool)
    )
    if wrong_type:
        raise EventDecodeError(
            f"{what} key {key!r} has wrong type: expected "
            f"{types}, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class EdgeRecord:
    """One edge change, typed and (for PCDATA children) valued."""

    kind: str  # "insert" | "delete"
    parent_type: str
    child_type: str
    parent: int
    child: int
    child_value: str | None = None
    """The child's string value when it is a PCDATA leaf and the value
    was still known at capture time; ``None`` means "unknown — assume
    any value" (pruning must stay conservative)."""

    def to_dict(self) -> dict:
        """The frozen JSON wire form (``docs/event-schema.md``)."""
        return {
            "kind": self.kind,
            "parent_type": self.parent_type,
            "child_type": self.child_type,
            "parent": self.parent,
            "child": self.child,
            "child_value": self.child_value,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EdgeRecord":
        """Decode one wire-form edge record (strict: bad shapes raise)."""
        if not isinstance(payload, dict):
            raise EventDecodeError(
                f"edge record must be an object, got {payload!r}"
            )
        kind = _expect(payload, "kind", str, "edge record")
        if kind not in ("insert", "delete"):
            raise EventDecodeError(
                f"edge record kind must be 'insert' or 'delete', "
                f"got {kind!r}"
            )
        value = payload.get("child_value")
        if value is not None and not isinstance(value, str):
            raise EventDecodeError(
                f"edge record child_value must be a string or null, "
                f"got {value!r}"
            )
        return cls(
            kind=kind,
            parent_type=_expect(payload, "parent_type", str, "edge record"),
            child_type=_expect(payload, "child_type", str, "edge record"),
            parent=_expect(payload, "parent", int, "edge record"),
            child=_expect(payload, "child", int, "edge record"),
            child_value=value,
        )


#: JSON scalar types a node's sem tuple may carry on the wire.
_SEM_SCALARS = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class NodeRecord:
    """One interning decision: node ``id`` ↔ ``(element, sem)``.

    The node-interning side channel for replication: edge records name
    nodes by id only, so a replica folding an insert for a node it has
    never seen needs the writer's ``(element, sem)`` binding for that
    id.  Every published event carries a record for each node appearing
    as an endpoint of one of its insert edges (captured before garbage
    collection, so endpoints that die within the same event are still
    described).  Pure metadata for subscription maintenance — the
    engine ignores it.
    """

    node: int
    element: str
    sem: tuple

    def to_dict(self) -> dict:
        """The JSON wire form (``sem`` travels as a list)."""
        return {
            "node": self.node,
            "element": self.element,
            "sem": list(self.sem),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NodeRecord":
        """Decode one wire-form node record (strict: bad shapes raise)."""
        if not isinstance(payload, dict):
            raise EventDecodeError(
                f"node record must be an object, got {payload!r}"
            )
        sem = _expect(payload, "sem", list, "node record")
        for value in sem:
            if not isinstance(value, _SEM_SCALARS):
                raise EventDecodeError(
                    f"node record sem values must be JSON scalars, "
                    f"got {value!r}"
                )
        return cls(
            node=_expect(payload, "node", int, "node record"),
            element=_expect(payload, "element", str, "node record"),
            sem=tuple(sem),
        )


def node_records_for(
    store: ViewStore, records: Iterable[EdgeRecord]
) -> list[NodeRecord]:
    """Interning records for every endpoint of the insert edges.

    Must run while the endpoints are still interned (before garbage
    collection).  Delete edges need no records: a replica deleting an
    edge already knows both endpoints.  Deduplicated, in first-seen
    order.
    """
    out: list[NodeRecord] = []
    seen: set[int] = set()
    for rec in records:
        if rec.kind != "insert":
            continue
        for node in (rec.parent, rec.child):
            if node in seen or not store.has_node(node):
                continue
            seen.add(node)
            out.append(
                NodeRecord(
                    node=node,
                    element=store.node_type[node],
                    sem=store.node_sem[node],
                )
            )
    return out


@dataclass
class ViewEvent:
    """One committed mutation, described for subscription maintenance."""

    generation: int
    """The updater's version counter *after* this mutation; a
    subscription refreshed against this event is current iff its own
    generation equals this value."""

    edges: list[EdgeRecord] = field(default_factory=list)

    nodes: list[NodeRecord] = field(default_factory=list)
    """Interning records for nodes appearing as insert-edge endpoints
    (see :class:`NodeRecord`).  An additive, optional wire key — schema
    version 1 decoders that predate it ignore it, and :meth:`from_dict`
    tolerates payloads without it."""

    coarse: bool = False
    """True when ``edges`` does not fully describe the change (base
    update propagation, store rebuilds): every subscription must fully
    re-evaluate."""

    deferred: bool = False
    """Emitted mid-batch while the Δ(M,L) repair is still pending; the
    registry buffers deferred events and processes them, coalesced,
    when the session's flush event arrives.  Deferred events are
    engine-internal: the public changefeed coalesces them before
    publication, so they never appear on the wire."""

    reason: str = ""

    closure: "tuple[list, list] | None" = None
    """The reachability-closure pair-delta ``(added, removed)`` of this
    commit's Δ(M,L) repair — lists of ``(ancestor, descendant)`` node
    ids, captured via :meth:`~repro.index.ReachabilityIndex.diff` when
    a consumer asked for it (``capture_closure_deltas``).  Lets the
    engine patch leading-``//`` regions instead of re-walking the whole
    descendant closure.  Engine-internal and advisory: ``None`` means
    "not captured, fall back to re-evaluation", and the field is
    deliberately absent from the wire format (:meth:`to_dict`)."""

    delta_r: RelationalDelta | None = None
    """The base-table group update ``ΔR`` this commit applied (``None``
    when the commit touched no relations — e.g. a batch flush's GC-only
    event).  Engine-internal like :attr:`closure` and deliberately
    absent from the wire format (:meth:`to_dict`): consumers see only
    the view-side ΔV, but the durable changefeed log (:mod:`repro.wal`)
    persists it alongside each event so crash recovery can restore the
    base database ``I`` in lockstep with the view."""

    # -- the frozen public wire format (docs/event-schema.md) -------------------

    def to_dict(self) -> dict:
        """The JSON-safe wire form of this event.

        ``deferred`` is deliberately absent: published events are always
        batch-coalesced, so the flag is meaningless to consumers.
        ``nodes`` is an additive optional key (not a version bump — see
        the compatibility rules in ``docs/event-schema.md``).
        """
        return {
            "schema": SCHEMA_VERSION,
            "generation": self.generation,
            "coarse": self.coarse,
            "reason": self.reason,
            "edges": [rec.to_dict() for rec in self.edges],
            "nodes": [rec.to_dict() for rec in self.nodes],
        }

    def to_json(self) -> str:
        """One compact JSON object (the changefeed's on-the-wire unit)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "ViewEvent":
        """Decode one wire-form event; strict on shape and version."""
        if not isinstance(payload, dict):
            raise EventDecodeError(f"event must be an object, got {payload!r}")
        schema = _expect(payload, "schema", int, "event")
        if schema != SCHEMA_VERSION:
            raise EventDecodeError(
                f"unsupported event schema version {schema} "
                f"(this library speaks version {SCHEMA_VERSION})"
            )
        edges = _expect(payload, "edges", list, "event")
        # ``nodes`` was added after v1 froze, as an *optional* key:
        # payloads from older producers simply lack it.
        nodes = payload.get("nodes", [])
        if not isinstance(nodes, list):
            raise EventDecodeError(
                f"event key 'nodes' has wrong type: expected a list, "
                f"got {nodes!r}"
            )
        return cls(
            generation=_expect(payload, "generation", int, "event"),
            edges=[EdgeRecord.from_dict(rec) for rec in edges],
            nodes=[NodeRecord.from_dict(rec) for rec in nodes],
            coarse=_expect(payload, "coarse", bool, "event"),
            reason=_expect(payload, "reason", str, "event"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ViewEvent":
        """Decode :meth:`to_json` output (round-trip tested)."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise EventDecodeError(f"event is not valid JSON: {exc}") from None
        return cls.from_dict(payload)


def edge_records_from_delta(
    store: ViewStore,
    delta: ViewDelta,
    removed_info: dict[int, tuple[str, str | None]] | None = None,
) -> list[EdgeRecord]:
    """Typed+valued records for a ΔV, resolving child values eagerly.

    Must run while the delta's child nodes are still interned (i.e.
    before garbage collection); for edges whose child has already been
    collected, ``removed_info`` (node → (type, value), captured by the
    maintenance pass) supplies the value instead.
    """
    records: list[EdgeRecord] = []
    for op in delta:
        value: str | None = None
        if store.has_node(op.child):
            value = store.value_of(op.child)
        elif removed_info is not None:
            value = removed_info.get(op.child, (op.child_type, None))[1]
        records.append(
            EdgeRecord(
                kind=op.kind,
                parent_type=op.parent_type,
                child_type=op.child_type,
                parent=op.parent,
                child=op.child,
                child_value=value,
            )
        )
    return records


def coalesce(events: Iterable[ViewEvent]) -> ViewEvent:
    """Merge a buffered event sequence into one (latest generation wins).

    Used when a batch session flushes: the per-op deferred events plus
    the flush's own GC event collapse into a single event carrying the
    union of the edge changes.  Membership pruning only needs the set of
    touched (label, value) coordinates, so concatenation — without
    cancelling an insert against a later delete — is sound, merely
    conservative.
    """
    merged = ViewEvent(generation=0)
    last = None
    seen_nodes: set[int] = set()
    delta_ops: list = []
    for event in events:
        merged.generation = max(merged.generation, event.generation)
        merged.coarse = merged.coarse or event.coarse
        merged.edges.extend(event.edges)
        for rec in event.nodes:
            if rec.node not in seen_nodes:
                seen_nodes.add(rec.node)
                merged.nodes.append(rec)
        if event.delta_r is not None:
            # ΔR ops concatenate in commit order (a batch's per-op
            # deferred events each carry their own ΔR; the flush event
            # carries none), so replaying the merged delta reproduces
            # the batch's base-table effect exactly.
            delta_ops.extend(event.delta_r.ops)
        if event.reason:
            merged.reason = event.reason
        last = event
    if delta_ops:
        merged.delta_r = RelationalDelta(delta_ops)
    # ``M`` is untouched while repairs are deferred, so the flush event
    # (always last in the buffer) carries the batch's entire closure
    # delta; mid-batch events have ``closure=None`` by construction.
    if last is not None:
        merged.closure = last.closure
    return merged
