"""The structured ΔV event stream consumed by the subscription engine.

Every committed mutation of a published view — foreground ΔV edge
operations, the background Δ(M,L) repair's garbage collection, base
update propagation — is described to subscribers as one
:class:`ViewEvent`: a generation-tagged list of :class:`EdgeRecord`
changes, or a *coarse* event when the publisher cannot (or does not
bother to) describe the change precisely.  Coarse events force a full
re-evaluation of every subscription; fine-grained events let the
per-step dependency analysis of :mod:`repro.subscribe.deps` skip or
partially re-evaluate queries.

Edges are the whole story for this XPath fragment: node types and
string values are immutable once interned (gen_id), the root never
changes, and a node with no incident edges is unreachable — so query
results can only move when an edge appears or disappears.  An
:class:`EdgeRecord` therefore carries the edge's typed endpoints plus
the child's PCDATA value (captured *before* garbage collection frees
the node), which is what value-anchored pruning needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.views.store import ViewDelta, ViewStore


@dataclass(frozen=True)
class EdgeRecord:
    """One edge change, typed and (for PCDATA children) valued."""

    kind: str  # "insert" | "delete"
    parent_type: str
    child_type: str
    parent: int
    child: int
    child_value: str | None = None
    """The child's string value when it is a PCDATA leaf and the value
    was still known at capture time; ``None`` means "unknown — assume
    any value" (pruning must stay conservative)."""


@dataclass
class ViewEvent:
    """One committed mutation, described for subscription maintenance."""

    generation: int
    """The updater's version counter *after* this mutation; a
    subscription refreshed against this event is current iff its own
    generation equals this value."""

    edges: list[EdgeRecord] = field(default_factory=list)
    coarse: bool = False
    """True when ``edges`` does not fully describe the change (base
    update propagation, store rebuilds): every subscription must fully
    re-evaluate."""

    deferred: bool = False
    """Emitted mid-batch while the Δ(M,L) repair is still pending; the
    registry buffers deferred events and processes them, coalesced,
    when the session's flush event arrives."""

    reason: str = ""


def edge_records_from_delta(
    store: ViewStore,
    delta: ViewDelta,
    removed_info: dict[int, tuple[str, str | None]] | None = None,
) -> list[EdgeRecord]:
    """Typed+valued records for a ΔV, resolving child values eagerly.

    Must run while the delta's child nodes are still interned (i.e.
    before garbage collection); for edges whose child has already been
    collected, ``removed_info`` (node → (type, value), captured by the
    maintenance pass) supplies the value instead.
    """
    records: list[EdgeRecord] = []
    for op in delta:
        value: str | None = None
        if store.has_node(op.child):
            value = store.value_of(op.child)
        elif removed_info is not None:
            value = removed_info.get(op.child, (op.child_type, None))[1]
        records.append(
            EdgeRecord(
                kind=op.kind,
                parent_type=op.parent_type,
                child_type=op.child_type,
                parent=op.parent,
                child=op.child,
                child_value=value,
            )
        )
    return records


def coalesce(events: Iterable[ViewEvent]) -> ViewEvent:
    """Merge a buffered event sequence into one (latest generation wins).

    Used when a batch session flushes: the per-op deferred events plus
    the flush's own GC event collapse into a single event carrying the
    union of the edge changes.  Membership pruning only needs the set of
    touched (label, value) coordinates, so concatenation — without
    cancelling an insert against a later delete — is sound, merely
    conservative.
    """
    merged = ViewEvent(generation=0)
    for event in events:
        merged.generation = max(merged.generation, event.generation)
        merged.coarse = merged.coarse or event.coarse
        merged.edges.extend(event.edges)
        if event.reason:
            merged.reason = event.reason
    return merged
