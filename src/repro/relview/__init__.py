"""Relational view updates under key preservation (paper, Section 4).

- :mod:`repro.relview.keypres` — the key-preservation condition on SPJ
  views (Section 4.1), checked via the equality closure of the selection
  condition;
- :mod:`repro.relview.delete` — Algorithm delete (Fig. 9): PTIME
  translation of group view deletions to base-table deletions
  (Theorem 1);
- :mod:`repro.relview.minimal` — the (NP-complete, Theorem 3) minimal
  view deletion problem: exact small-instance solver + greedy set-cover
  heuristic;
- :mod:`repro.relview.insert` — Algorithm insert (Section 4.3 +
  Appendix A): tuple templates, symbolic evaluation over the U/A/B
  partitions, side-effect encoding, SAT solving, and ``ΔR`` extraction.
"""

from repro.relview.keypres import is_key_preserving, key_preservation_report
from repro.relview.delete import translate_deletions, DeletionPlan
from repro.relview.insert import translate_insertions, InsertionPlan
from repro.relview.minimal import minimal_deletion_exact, minimal_deletion_greedy

__all__ = [
    "is_key_preserving",
    "key_preservation_report",
    "translate_deletions",
    "DeletionPlan",
    "translate_insertions",
    "InsertionPlan",
    "minimal_deletion_exact",
    "minimal_deletion_greedy",
]
