"""Algorithm delete (paper, Fig. 9): PTIME group deletion translation.

Input: the edge views ``V`` (key-preserving SPJ queries over the base
relations), the database ``I`` and a group deletion ``ΔV`` (view rows to
remove).  For each view row ``t`` the *deletable source* ``Sr(Q, t)`` is
the set of base tuples contributing to ``t`` — readable directly off the
projected keys thanks to key preservation.  Deleting any source removes
``t``; a source is *side-effect free* iff it is not in the deletable
source of any view row (of any view) that must remain.  The algorithm
picks one side-effect-free source per view row, or rejects.

The worst case is ``O(|ΔV| · (|V(I)| − |ΔV|))``; the implementation
indexes "view rows referencing a base tuple" per candidate source so a
run touches only the relevant rows (the constant claimed in Section 5's
evaluation: deletion time dominated by XPath, not translation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UpdateRejectedError
from repro.relational.database import Database, RelationalDelta
from repro.views.registry import EdgeView, EdgeViewRegistry
from repro.views.store import ViewDelta, ViewStore


@dataclass
class DeletionPlan:
    """Result of translating a view group deletion."""

    delta_r: RelationalDelta = field(default_factory=RelationalDelta)
    view_rows: list[tuple[str, tuple]] = field(default_factory=list)
    """(view name, full view row) pairs deleted, for reporting."""
    chosen_sources: list[tuple[str, tuple]] = field(default_factory=list)
    """(relation, key) actually deleted."""


def expand_view_deletions(
    registry: EdgeViewRegistry,
    store: ViewStore,
    db: Database,
    delta_v: ViewDelta,
) -> list[tuple[EdgeView, tuple]]:
    """Resolve ``ΔV`` edge deletions to full view rows (with key columns).

    One deleted edge may correspond to several view rows differing only
    in hidden key columns (multiple derivations); removing the edge
    requires removing them all.
    """
    out: list[tuple[EdgeView, tuple]] = []
    for op in delta_v.deletions():
        view = registry.view(op.parent_type, op.child_type)
        parent_sem = store.sem_of(op.parent)
        parent_signature = registry.atg.signature(op.parent_type)
        parent_params = tuple(
            parent_sem[parent_signature.index(p)] for p in view.param_names
        )
        child_sem = store.sem_of(op.child)
        rows = view.matching_rows(db, parent_params, child_sem)
        if not rows:
            raise UpdateRejectedError(
                f"edge ({op.parent},{op.child}) of {view.name} has no "
                "derivation in the base data; store out of sync"
            )
        for row in rows:
            out.append((view, row))
    return out


def translate_deletions(
    registry: EdgeViewRegistry,
    db: Database,
    deletions: list[tuple[EdgeView, tuple]],
) -> DeletionPlan:
    """Algorithm delete: compute ``ΔR`` for the given view-row deletions.

    Raises :class:`UpdateRejectedError` when some view row has no
    side-effect-free deletable source.
    """
    plan = DeletionPlan()
    if not deletions:
        return plan

    # ΔV membership per view, for the "remains in the view" test.
    doomed: dict[str, set[tuple]] = {}
    for view, row in deletions:
        doomed.setdefault(view.name, set()).add(row)

    chosen: dict[tuple[str, tuple], tuple] = {}  # (relation, key) -> base row

    for view, row in deletions:
        plan.view_rows.append((view.name, row))
        sources = view.sources(row)
        selected: tuple[str, tuple] | None = None
        for relation, alias, key in sources:
            base_row = db.table(relation).get(key)
            if base_row is None:
                continue  # already deleted by an earlier choice in ΔR
            if (relation, key) in chosen:
                selected = (relation, key)
                break
            if _is_side_effect_free(registry, db, relation, key, doomed):
                selected = (relation, key)
                chosen[(relation, key)] = base_row
                break
        if selected is None:
            raise UpdateRejectedError(
                f"view row {row!r} of {view.name} has no side-effect-free "
                "deletable source; deletion rejected"
            )

    for (relation, key), base_row in chosen.items():
        plan.delta_r.delete(relation, base_row)
        plan.chosen_sources.append((relation, key))
    return plan


def _is_side_effect_free(
    registry: EdgeViewRegistry,
    db: Database,
    relation: str,
    key: tuple,
    doomed: dict[str, set[tuple]],
) -> bool:
    """Would deleting base tuple (relation, key) kill only ΔV rows?

    Checks, for every view and every occurrence (alias) of the relation
    in it, that all referencing view rows are in ``ΔV``.
    """
    for view in registry.views():
        for alias, (rel, _) in view.key_layout.items():
            if rel != relation:
                continue
            for row in view.rows_referencing(db, alias, key):
                if row not in doomed.get(view.name, ()):
                    return False
    return True
