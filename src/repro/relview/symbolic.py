"""Symbolic tuples and equality atoms for the insertion translator.

Tuple templates (paper, Section 4.3) are base rows in which unknown
attribute values are *variables*.  A variable is canonical per
``(relation, key, attribute)`` — the same unknown cell is the same
variable no matter which target edge or derivation mentions it, which
makes cross-edge consistency automatic.

Conditions are conjunctions of equality atoms between variables and
constants; they feed the finite-domain encoder
(:mod:`repro.sat.encode`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.schema import AttrType


@dataclass(frozen=True)
class SymVar:
    """A canonical unknown: attribute ``attr`` of base tuple (relation, key)."""

    relation: str
    key: tuple
    attr: str
    attr_type: AttrType

    @property
    def name(self) -> str:
        key_text = "_".join(str(k) for k in self.key)
        return f"{self.relation}.{key_text}.{self.attr}"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FreshToken:
    """Placeholder for "any value distinct from all constants".

    Decoded to a concrete unused value at ΔR extraction time.
    """

    var: SymVar
    index: int = 0

    def __str__(self) -> str:
        return f"⋆{self.var.name}/{self.index}"


# Atoms: at least one side is a SymVar.
@dataclass(frozen=True)
class AtomVC:
    """``var = const``."""

    var: SymVar
    const: object

    def __str__(self) -> str:
        return f"{self.var}={self.const!r}"


@dataclass(frozen=True)
class AtomVV:
    """``a = b`` between two variables."""

    a: SymVar
    b: SymVar

    def __str__(self) -> str:
        return f"{self.a}={self.b}"


Atom = AtomVC | AtomVV


def make_atom(left: object, right: object) -> Atom | bool:
    """Build the atom for ``left = right``; booleans for decided cases."""
    left_var = isinstance(left, SymVar)
    right_var = isinstance(right, SymVar)
    if left_var and right_var:
        if left == right:
            return True
        a, b = sorted((left, right), key=lambda v: v.name)
        return AtomVV(a, b)
    if left_var:
        return AtomVC(left, right)
    if right_var:
        return AtomVC(right, left)
    return left == right


@dataclass
class Template:
    """A tuple template: a base row with possible :class:`SymVar` cells."""

    relation: str
    key: tuple
    values: tuple  # mix of concrete values and SymVar
    is_new: bool
    """True if the key is absent from the base table (a U_i template)."""

    def variables(self) -> list[SymVar]:
        return [v for v in self.values if isinstance(v, SymVar)]

    def instantiate(self, valuation: dict[SymVar, object]) -> tuple:
        return tuple(
            valuation[v] if isinstance(v, SymVar) else v for v in self.values
        )


@dataclass
class Derivation:
    """One symbolic derivation of a view row.

    ``row`` may contain variables; ``atoms`` is the conjunction of
    equality atoms under which the derivation actually produces the row.
    """

    view_name: str
    row: tuple
    atoms: frozenset[Atom]
    uses_new: bool = True
    meta: dict = field(default_factory=dict)
