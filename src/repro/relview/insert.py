"""Algorithm insert (paper, Section 4.3 and Appendix A).

Translates a group of view-row insertions ``ΔV`` into base-table
insertions ``ΔR`` via SAT, in five stages:

1. **Templates.**  For every target edge, the equality closure of the
   edge view's selection condition propagates the known values (parent
   parameters, child semantic attributes, constants) into one tuple
   template per base occurrence.  Key preservation guarantees the key
   part is fully known; other cells become canonical variables
   (:class:`~repro.relview.symbolic.SymVar`).  Templates whose key
   already exists in the base table are filled from the stored row
   (``B_i`` in the appendix); the rest are the new tuples ``U_i``.

2. **Canonical assertions.**  The conditions the templates must satisfy
   to actually derive their target (atoms over variables) are asserted.

3. **Side-effect sweep.**  Every edge view is evaluated symbolically
   over ``I ∪ X`` restricted to derivations using at least one new
   template (seed-position enumeration avoids duplicates).  Because view
   rows project every base key and new templates carry keys absent from
   ``I``, such a derivation can never equal an existing view row; it is
   benign iff it *is* one of the targets (per-position symbolic
   identity), otherwise its condition is negated — an unconditional
   side effect rejects the update outright (case (a) in the paper).

4. **SAT.**  Variables get finite domains (their type's domain for BOOL;
   the constants of their connected component plus fresh "distinct"
   tokens for infinite types — a sound and complete finite abstraction
   for equality constraints).  The formula is encoded to CNF and handed
   to WalkSAT; optionally DPLL decides it completely.

5. **ΔR.**  A model instantiates the new templates; fresh tokens decode
   to values outside the active domain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import UpdateRejectedError
from repro.relational.conditions import Col, Const, Eq, Predicate
from repro.relational.database import Database, RelationalDelta
from repro.relational.schema import AttrType
from repro.relview.symbolic import (
    Atom,
    AtomVC,
    AtomVV,
    Derivation,
    SymVar,
    Template,
    make_atom,
)
from repro.sat.dpll import dpll_solve
from repro.sat.encode import (
    FDVar,
    FFalse,
    FTrue,
    VarConst,
    VarVar,
    encode_formula,
    fd_and,
    fd_not,
    fd_or,
)
from repro.sat.walksat import walksat_solve
from repro.views.registry import EdgeView, EdgeViewRegistry
from repro.views.store import ViewDelta, ViewStore

_FRESH_POOL = 2  # distinct "anything else" values per component variable


@dataclass
class InsertionPlan:
    """Result of translating a view group insertion."""

    delta_r: RelationalDelta = field(default_factory=RelationalDelta)
    new_templates: list[Template] = field(default_factory=list)
    target_rows: list[tuple[str, tuple]] = field(default_factory=list)
    """(view name, symbolic full row) of every target edge."""
    num_vars: int = 0
    num_clauses: int = 0
    solver: str = "none"
    derivations_checked: int = 0


class _TargetEdge:
    """One ΔV insertion resolved against its edge view."""

    def __init__(self, view: EdgeView, parent_params: tuple, child_sem: tuple):
        self.view = view
        self.parent_params = parent_params
        self.child_sem = child_sem
        self.row: tuple | None = None  # symbolic full view row


def translate_insertions(
    registry: EdgeViewRegistry,
    store: ViewStore,
    db: Database,
    delta_v: ViewDelta,
    solver: str = "walksat",
    rng: random.Random | None = None,
) -> InsertionPlan:
    """Run Algorithm insert for the insertions in ``ΔV``.

    ``solver`` is ``'walksat'`` (the paper's choice; may give up on
    satisfiable instances), ``'dpll'`` (complete) or ``'auto'``
    (WalkSAT first, DPLL on give-up).

    Raises :class:`UpdateRejectedError` on definite side effects, on an
    unsatisfiable/unsolved encoding, or on inconsistent targets.
    """
    plan = InsertionPlan()
    targets = _resolve_targets(registry, store, db, delta_v)
    if not targets:
        return plan

    templates, assertions = _build_templates(db, targets)
    plan.new_templates = [t for t in templates.values() if t.is_new]
    for target in targets:
        plan.target_rows.append((target.view.name, target.row))

    if not plan.new_templates:
        # Everything already present: targets must hold unconditionally.
        for atom in assertions:
            raise UpdateRejectedError(
                f"target requires condition {atom} but no new tuple can "
                "carry it"
            )
        return plan

    derivations = _sweep_side_effects(registry, db, templates)
    plan.derivations_checked = len(derivations)

    target_rows = {(t.view.name, t.row) for t in targets}
    formula_parts = [_atom_formula(a) for a in assertions]
    covered_targets: set[tuple[str, tuple]] = set()
    for derivation in derivations:
        key = (derivation.view_name, derivation.row)
        if key in target_rows:
            covered_targets.add(key)
            for atom in derivation.atoms:
                formula_parts.append(_atom_formula(atom))
            continue
        if not derivation.atoms:
            raise UpdateRejectedError(
                f"insertion causes an unconditional side effect on view "
                f"{derivation.view_name}: row {derivation.row!r}"
            )
        formula_parts.append(
            fd_or(*(fd_not(_atom_formula(a)) for a in derivation.atoms))
        )
    missing = target_rows - covered_targets
    if missing:
        raise UpdateRejectedError(
            f"targets {sorted(m[0] for m in missing)} are not derivable "
            "from the base data plus the new tuples"
        )

    formula = fd_and(*formula_parts)
    valuation = _solve(formula, _all_atoms(assertions, derivations), solver, rng, plan)
    if valuation is None:
        raise UpdateRejectedError(
            f"no side-effect-free instantiation found (solver: {plan.solver})"
        )

    concrete = _decode_valuation(db, valuation, plan.new_templates)
    for template in plan.new_templates:
        plan.delta_r.insert(template.relation, template.instantiate(concrete))
    return plan


# ---------------------------------------------------------------------------
# Stage 1-2: targets and templates
# ---------------------------------------------------------------------------


def _resolve_targets(
    registry: EdgeViewRegistry,
    store: ViewStore,
    db: Database,
    delta_v: ViewDelta,
) -> list[_TargetEdge]:
    targets: list[_TargetEdge] = []
    seen: set[tuple[str, tuple, tuple]] = set()
    for op in delta_v.insertions():
        if not registry.has_view(op.parent_type, op.child_type):
            continue  # projection edge: derived, no base backing needed
        view = registry.view(op.parent_type, op.child_type)
        parent_sem = store.sem_of(op.parent)
        signature = registry.atg.signature(op.parent_type)
        parent_params = tuple(
            parent_sem[signature.index(p)] for p in view.param_names
        )
        child_sem = store.sem_of(op.child)
        dedup = (view.name, parent_params, child_sem)
        if dedup in seen:
            continue
        seen.add(dedup)
        if view.matching_rows(db, parent_params, child_sem):
            continue  # already derivable: set semantics, nothing to insert
        targets.append(_TargetEdge(view, parent_params, child_sem))
    return targets


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


def _build_templates(
    db: Database, targets: list[_TargetEdge]
) -> tuple[dict[tuple[str, tuple], Template], list[Atom]]:
    """Build the tuple templates and the canonical assertions."""
    templates: dict[tuple[str, tuple], Template] = {}
    assertions: list[Atom] = []

    for target in targets:
        view = target.view
        query = view.query
        classes = _UnionFind()
        known: dict = {}

        def learn(item, value) -> None:
            root = classes.find(item)
            if root in known and known[root] != value:
                raise UpdateRejectedError(
                    f"target edge of {view.name} is inconsistent: "
                    f"{item} must be both {known[root]!r} and {value!r}"
                )
            known[root] = value

        for conjunct in query.where.conjuncts():
            if isinstance(conjunct, Eq):
                left, right = conjunct.left, conjunct.right
                if isinstance(left, Col) and isinstance(right, Col):
                    classes.union((left.alias, left.attr), (right.alias, right.attr))
                elif isinstance(left, Col) and isinstance(right, Const):
                    learn((left.alias, left.attr), right.value)
                elif isinstance(right, Col) and isinstance(left, Const):
                    learn((right.alias, right.attr), left.value)
            else:
                if any(isinstance(c, Col) for c in conjunct.columns()):
                    raise UpdateRejectedError(
                        f"view {view.name} has a non-equality condition; "
                        "insertion translation supports equality SPJ views"
                    )
        # Known values from the target's visible columns.
        visible = list(target.parent_params) + list(target.child_sem)
        for (name, col), value in zip(query.project, visible):
            learn((col.alias, col.attr), value)

        # One template per base occurrence.
        row_cells: dict[str, list] = {}
        for relation, alias in query.tables:
            schema = db.schema(relation)
            cells: list = []
            for attr in schema.attribute_names:
                root = classes.find((alias, attr))
                if root in known:
                    cells.append(known[root])
                else:
                    cells.append(root)  # placeholder, resolved below
            row_cells[alias] = cells

        # Determine keys; reject if a key cell is unknown.
        alias_keys: dict[str, tuple] = {}
        for relation, alias in query.tables:
            schema = db.schema(relation)
            key_values = []
            for attr in schema.key:
                value = row_cells[alias][schema.index_of(attr)]
                if isinstance(value, tuple) and len(value) == 2 and isinstance(
                    value[0], str
                ):
                    raise UpdateRejectedError(
                        f"cannot determine key attribute {relation}.{attr} "
                        f"for a target edge of {view.name}"
                    )
                key_values.append(value)
            alias_keys[alias] = tuple(key_values)

        # Replace unknown placeholders by canonical variables; merge with
        # existing rows; record the conditions as assertions.
        alias_values: dict[str, tuple] = {}
        placeholder_var: dict = {}
        for relation, alias in query.tables:
            schema = db.schema(relation)
            key = alias_keys[alias]
            existing = db.table(relation).get(key)
            values: list = []
            for index, attr in enumerate(schema.attribute_names):
                cell = row_cells[alias][index]
                if not _is_placeholder(cell):
                    values.append(cell)
                    continue
                if existing is not None:
                    # Fill from the stored row (B_i case); remember the
                    # binding so equalities to this class still apply.
                    value = existing[index]
                    values.append(value)
                    root = cell
                    if root in placeholder_var:
                        result = make_atom(placeholder_var[root], value)
                        if result is False:
                            raise UpdateRejectedError(
                                f"existing tuple {relation}{key} conflicts "
                                f"with a target edge of {view.name}"
                            )
                        if result is not True:
                            assertions.append(result)
                    else:
                        placeholder_var[root] = value
                    continue
                root = cell
                var = SymVar(
                    relation, key, attr, schema.attribute(attr).type
                )
                bound = placeholder_var.get(root)
                if bound is None:
                    placeholder_var[root] = var
                else:
                    result = make_atom(bound, var)
                    if result is False:
                        raise UpdateRejectedError(
                            f"conflicting bindings for {var} in {view.name}"
                        )
                    if result is not True:
                        assertions.append(result)
                values.append(var)
            if existing is not None:
                # Concrete cells must agree with the stored row.
                for index, cell in enumerate(values):
                    if not isinstance(cell, SymVar) and cell != existing[index]:
                        raise UpdateRejectedError(
                            f"target edge of {view.name} requires "
                            f"{relation}{key} to hold {cell!r} but it holds "
                            f"{existing[index]!r}"
                        )
                values = list(existing)
            alias_values[alias] = tuple(values)
            tpl_key = (relation, key)
            template = Template(
                relation, key, tuple(values), is_new=existing is None
            )
            prior = templates.get(tpl_key)
            if prior is None:
                templates[tpl_key] = template
            else:
                merged, extra = _merge_templates(prior, template)
                templates[tpl_key] = merged
                assertions.extend(extra)
                alias_values[alias] = merged.values

        # Symbolic full view row of the target.
        target.row = tuple(
            alias_values[col.alias][
                db.schema(_relation_of(query, col.alias)).index_of(col.attr)
            ]
            for _, col in query.project
        )
    return templates, assertions


def _relation_of(query, alias: str) -> str:
    for relation, a in query.tables:
        if a == alias:
            return relation
    raise KeyError(alias)


def _is_placeholder(cell) -> bool:
    """Row cells start as union-find roots ((alias, attr) tuples)."""
    return (
        isinstance(cell, tuple)
        and len(cell) == 2
        and isinstance(cell[0], str)
        and isinstance(cell[1], str)
    )


def _merge_templates(a: Template, b: Template) -> tuple[Template, list[Atom]]:
    """Merge two templates for the same base tuple; emit consistency atoms."""
    atoms: list[Atom] = []
    merged: list = []
    for left, right in zip(a.values, b.values):
        result = make_atom(left, right)
        if result is False:
            raise UpdateRejectedError(
                f"conflicting requirements on base tuple "
                f"{a.relation}{a.key}: {left!r} vs {right!r}"
            )
        if result is not True and result is not None:
            if isinstance(result, (AtomVC, AtomVV)):
                atoms.append(result)
        # Prefer the concrete side.
        merged.append(right if isinstance(left, SymVar) else left)
    return Template(a.relation, a.key, tuple(merged), a.is_new), atoms


# ---------------------------------------------------------------------------
# Stage 3: side-effect sweep
# ---------------------------------------------------------------------------


def _sweep_side_effects(
    registry: EdgeViewRegistry,
    db: Database,
    templates: dict[tuple[str, tuple], Template],
) -> list[Derivation]:
    """Every symbolic derivation (of any view) using ≥1 new template."""
    new_by_relation: dict[str, list[Template]] = {}
    for template in templates.values():
        if template.is_new:
            new_by_relation.setdefault(template.relation, []).append(template)
    if not new_by_relation:
        return []
    derivations: list[Derivation] = []
    for view in registry.views():
        derivations.extend(_sweep_view(view, db, new_by_relation))
    return derivations


def _sweep_view(
    view: EdgeView,
    db: Database,
    new_by_relation: dict[str, list[Template]],
) -> list[Derivation]:
    query = view.query
    tables = list(query.tables)
    relations = [relation for relation, _ in tables]
    if not any(rel in new_by_relation for rel in relations):
        return []
    conjuncts = list(query.where.conjuncts())
    out: list[Derivation] = []
    for seed_pos, (relation, alias) in enumerate(tables):
        for seed in new_by_relation.get(relation, ()):  # U at seed position
            partial: dict[str, tuple] = {alias: seed.values}
            atoms = _alias_atoms(db, query, conjuncts, alias, partial)
            if atoms is None:
                continue
            out.extend(
                _extend(
                    view,
                    db,
                    new_by_relation,
                    tables,
                    conjuncts,
                    seed_pos,
                    partial,
                    frozenset(atoms),
                    skip={alias},
                )
            )
    return out


def _extend(
    view: EdgeView,
    db: Database,
    new_by_relation: dict[str, list[Template]],
    tables: list[tuple[str, str]],
    conjuncts: list[Predicate],
    seed_pos: int,
    partial: dict[str, tuple],
    atoms: frozenset[Atom],
    skip: set[str],
) -> list[Derivation]:
    """Nested-loop extension of a partial symbolic assignment."""
    remaining = [
        (i, rel, alias)
        for i, (rel, alias) in enumerate(tables)
        if alias not in partial
    ]
    if not remaining:
        row = tuple(
            partial[col.alias][
                db.schema(_relation_of_t(tables, col.alias)).index_of(col.attr)
            ]
            for _, col in view.query.project
        )
        return [Derivation(view.name, row, atoms)]
    index, relation, alias = remaining[0]
    out: list[Derivation] = []
    candidates: list[tuple[tuple, bool]] = []
    for row in _concrete_candidates(db, view.query, relation, alias, conjuncts, partial):
        candidates.append((row, False))
    if index > seed_pos:
        # Positions after the seed may also take new templates.
        for template in new_by_relation.get(relation, ()):  # U again
            candidates.append((template.values, True))
    for values, _is_template in candidates:
        trial = dict(partial)
        trial[alias] = values
        extra = _alias_atoms(db, view.query, conjuncts, alias, trial)
        if extra is None:
            continue
        out.extend(
            _extend(
                view,
                db,
                new_by_relation,
                tables,
                conjuncts,
                seed_pos,
                trial,
                atoms | frozenset(extra),
                skip,
            )
        )
    return out


def _relation_of_t(tables: list[tuple[str, str]], alias: str) -> str:
    for relation, a in tables:
        if a == alias:
            return relation
    raise KeyError(alias)


def _concrete_candidates(
    db: Database,
    query,
    relation: str,
    alias: str,
    conjuncts: list[Predicate],
    partial: dict[str, tuple],
) -> list[tuple]:
    """Base rows for ``alias`` compatible with concrete bound values.

    Uses indexed point lookups on equality conjuncts whose other side is
    already bound to a *concrete* value.
    """
    table = db.table(relation)
    eq_attrs: list[str] = []
    eq_values: list[object] = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, Eq):
            continue
        pairs = [
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ]
        for this, other in pairs:
            if not (isinstance(this, Col) and this.alias == alias):
                continue
            if isinstance(other, Const):
                eq_attrs.append(this.attr)
                eq_values.append(other.value)
            elif isinstance(other, Col) and other.alias in partial:
                cell = _term_cell(db, query, partial, other)
                if not isinstance(cell, SymVar):
                    eq_attrs.append(this.attr)
                    eq_values.append(cell)
            break
    if eq_attrs:
        order = sorted(range(len(eq_attrs)), key=lambda i: eq_attrs[i])
        attrs = tuple(eq_attrs[i] for i in order)
        values = tuple(eq_values[i] for i in order)
        if not table.has_index(attrs) and len(attrs) > 1:
            # Fall back to the first single attribute.
            attrs = (attrs[0],)
            values = (values[0],)
        return table.lookup(attrs, values)
    return list(table.rows())


def _alias_atoms(
    db: Database,
    query,
    conjuncts: list[Predicate],
    alias: str,
    partial: dict[str, tuple],
) -> list[Atom] | None:
    """Check/collect conditions that became fully bound by adding ``alias``.

    Returns ``None`` when a concrete condition fails; otherwise the atoms
    contributed by symbolic comparisons.
    """
    atoms: list[Atom] = []
    for conjunct in conjuncts:
        if not isinstance(conjunct, Eq):
            continue
        cols = list(conjunct.columns())
        if not any(c.alias == alias for c in cols):
            continue
        if any(c.alias not in partial for c in cols):
            continue
        left = _term_cell(db, query, partial, conjunct.left)
        right = _term_cell(db, query, partial, conjunct.right)
        result = make_atom(left, right)
        if result is False:
            return None
        if result is not True:
            atoms.append(result)
    return atoms


def _term_cell(db: Database, query, partial: dict[str, tuple], term):
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Col):
        relation = _relation_of(query, term.alias)
        return partial[term.alias][db.schema(relation).index_of(term.attr)]
    raise UpdateRejectedError(f"unsupported term {term!r} in insertion sweep")


# ---------------------------------------------------------------------------
# Stage 4: SAT
# ---------------------------------------------------------------------------


def _atom_formula(atom: Atom):
    if isinstance(atom, AtomVC):
        return VarConst(FDVar(atom.var.name), atom.const)
    return VarVar(FDVar(atom.a.name), FDVar(atom.b.name))


def _all_atoms(
    assertions: list[Atom], derivations: list[Derivation]
) -> list[Atom]:
    atoms = list(assertions)
    for derivation in derivations:
        atoms.extend(derivation.atoms)
    return atoms


def _solve(
    formula,
    atoms: list[Atom],
    solver: str,
    rng: random.Random | None,
    plan: InsertionPlan,
) -> dict[SymVar, object] | None:
    """Encode and solve; return a valuation of the symbolic variables."""
    domains, var_index = _build_domains(atoms)
    if formula is FTrue:
        plan.solver = "trivial"
        return {var: domain[0] for var, domain in _sym_domains(domains, var_index).items()}
    if formula is FFalse:
        plan.solver = "trivial"
        return None
    encoding = encode_formula(
        formula, {FDVar(v.name): d for v, d in _sym_domains(domains, var_index).items()}
    )
    plan.num_vars = encoding.cnf.num_vars
    plan.num_clauses = len(encoding.cnf)
    assignment = None
    used = solver
    if solver in ("walksat", "auto"):
        assignment = walksat_solve(encoding.cnf, rng=rng or random.Random(7))
        used = "walksat"
    if assignment is None and solver in ("dpll", "auto"):
        assignment = dpll_solve(encoding.cnf)
        used = "dpll"
    plan.solver = used
    if assignment is None:
        return None
    decoded = encoding.decode(assignment)
    valuation: dict[SymVar, object] = {}
    for var in var_index.values():
        valuation[var] = decoded[FDVar(var.name)]
    return valuation


def _build_domains(
    atoms: list[Atom],
) -> tuple[dict[str, tuple], dict[str, SymVar]]:
    """Finite abstraction: per-variable domains from the atom structure."""
    var_index: dict[str, SymVar] = {}
    neighbors: dict[str, set[str]] = {}
    constants: dict[str, set] = {}
    for atom in atoms:
        if isinstance(atom, AtomVC):
            var_index[atom.var.name] = atom.var
            constants.setdefault(atom.var.name, set()).add(atom.const)
            neighbors.setdefault(atom.var.name, set())
        else:
            var_index[atom.a.name] = atom.a
            var_index[atom.b.name] = atom.b
            neighbors.setdefault(atom.a.name, set()).add(atom.b.name)
            neighbors.setdefault(atom.b.name, set()).add(atom.a.name)
            constants.setdefault(atom.a.name, set())
            constants.setdefault(atom.b.name, set())
    # Connected components (equality-relevant groups).
    domains: dict[str, tuple] = {}
    seen: set[str] = set()
    for name in sorted(var_index):
        if name in seen:
            continue
        component = [name]
        seen.add(name)
        queue = [name]
        while queue:
            current = queue.pop()
            for other in neighbors.get(current, ()):
                if other not in seen:
                    seen.add(other)
                    component.append(other)
                    queue.append(other)
        pool: set = set()
        for member in component:
            pool |= constants.get(member, set())
        shared = sorted(pool, key=repr)
        fresh = [f"__fresh_{i}__{component[0]}" for i in range(len(component) + _FRESH_POOL)]
        for member in component:
            var = var_index[member]
            if var.attr_type is AttrType.BOOL:
                domains[member] = (False, True)
            else:
                domains[member] = tuple(shared) + tuple(fresh)
    return domains, var_index


def _sym_domains(
    domains: dict[str, tuple], var_index: dict[str, SymVar]
) -> dict[SymVar, tuple]:
    return {var_index[name]: domain for name, domain in domains.items()}


# ---------------------------------------------------------------------------
# Stage 5: decode
# ---------------------------------------------------------------------------

_fresh_counter = [0]


def reset_fresh_counter(value: int = 0) -> None:
    """Reset the process-wide fresh-value sequence.

    Determinism hook for tests and benchmarks that compare two identical
    runs in one process (fresh values stay domain-safe for any counter
    start: integers are offset by the relation's current maximum).
    """
    _fresh_counter[0] = value


def _decode_valuation(
    db: Database,
    valuation: dict[SymVar, object],
    new_templates: list[Template],
) -> dict[SymVar, object]:
    """Turn fresh tokens into concrete values outside the active domain.

    Fresh tokens are shared within an equality component, so two
    variables assigned the *same* token must decode to the *same*
    concrete value — otherwise an asserted ``var = var`` equality would
    be silently broken.
    """
    concrete: dict[SymVar, object] = {}
    token_values: dict[str, object] = {}
    needed_vars = {v for t in new_templates for v in t.variables()}
    for var in sorted(needed_vars, key=lambda v: v.name):
        value = valuation.get(var)
        if value is None:
            value = _fresh_value(db, var)
        elif isinstance(value, str) and value.startswith("__fresh_"):
            token = value
            if token not in token_values:
                token_values[token] = _fresh_value(db, var)
            value = token_values[token]
        concrete[var] = value
    return concrete


def _fresh_value(db: Database, var: SymVar):
    """A value of the right type guaranteed outside the active domain."""
    _fresh_counter[0] += 1
    seq = _fresh_counter[0]
    if var.attr_type is AttrType.INT:
        table = db.table(var.relation)
        index = table.schema.index_of(var.attr)
        top = 0
        for row in table.rows():
            if isinstance(row[index], int):
                top = max(top, row[index])
        return top + 1_000_000 + seq
    if var.attr_type is AttrType.FLOAT:
        return 1e12 + seq
    if var.attr_type is AttrType.BOOL:
        return False
    return f"zz_fresh_{seq}"
