"""The minimal view deletion problem (paper, Theorem 3: NP-complete).

Given view-row deletions, find the *smallest* set of base-tuple deletions
achieving them without side effects.  The paper proves NP-completeness by
reduction from minimum set cover; accordingly this module offers

- :func:`minimal_deletion_exact` — exact branch-and-bound search over
  side-effect-free sources (small instances only);
- :func:`minimal_deletion_greedy` — the classic ``ln n`` greedy set-cover
  heuristic, linear-ish and good in practice.

Both return ``None`` when some view row has no side-effect-free source
(the instance is infeasible, exactly when Algorithm delete rejects).
"""

from __future__ import annotations

from repro.relational.database import Database, RelationalDelta
from repro.views.registry import EdgeView, EdgeViewRegistry
from repro.relview.delete import _is_side_effect_free


def _candidate_covers(
    registry: EdgeViewRegistry,
    db: Database,
    deletions: list[tuple[EdgeView, tuple]],
) -> tuple[list[tuple[str, tuple]], dict[tuple[str, tuple], set[int]], bool]:
    """For each side-effect-free source, the set of ΔV rows it covers.

    Returns (sources, cover map, feasible).
    """
    doomed: dict[str, set[tuple]] = {}
    for view, row in deletions:
        doomed.setdefault(view.name, set()).add(row)
    safe: dict[tuple[str, tuple], bool] = {}
    covers: dict[tuple[str, tuple], set[int]] = {}
    for index, (view, row) in enumerate(deletions):
        for relation, alias, key in view.sources(row):
            if db.table(relation).get(key) is None:
                continue
            source = (relation, key)
            if source not in safe:
                safe[source] = _is_side_effect_free(
                    registry, db, relation, key, doomed
                )
            if safe[source]:
                covers.setdefault(source, set()).add(index)
    covered = set()
    for cover in covers.values():
        covered |= cover
    feasible = len(covered) == len(deletions)
    return sorted(covers), covers, feasible


def minimal_deletion_greedy(
    registry: EdgeViewRegistry,
    db: Database,
    deletions: list[tuple[EdgeView, tuple]],
) -> RelationalDelta | None:
    """Greedy set cover over side-effect-free sources."""
    if not deletions:
        return RelationalDelta()
    sources, covers, feasible = _candidate_covers(registry, db, deletions)
    if not feasible:
        return None
    uncovered = set(range(len(deletions)))
    delta = RelationalDelta()
    while uncovered:
        best = max(sources, key=lambda s: (len(covers[s] & uncovered), s))
        gain = covers[best] & uncovered
        if not gain:
            return None  # unreachable if feasible, defensive
        uncovered -= gain
        relation, key = best
        delta.delete(relation, db.table(relation).get(key))
    return delta


def minimal_deletion_exact(
    registry: EdgeViewRegistry,
    db: Database,
    deletions: list[tuple[EdgeView, tuple]],
    max_sources: int = 20,
) -> RelationalDelta | None:
    """Exact minimal cover by branch and bound (small instances).

    Raises ``ValueError`` if there are more than ``max_sources``
    candidate sources — the problem is NP-complete (Theorem 3); use the
    greedy heuristic beyond toy sizes.
    """
    if not deletions:
        return RelationalDelta()
    sources, covers, feasible = _candidate_covers(registry, db, deletions)
    if not feasible:
        return None
    if len(sources) > max_sources:
        raise ValueError(
            f"{len(sources)} candidate sources exceed max_sources="
            f"{max_sources}; use minimal_deletion_greedy"
        )
    universe = set(range(len(deletions)))
    best: list[tuple[str, tuple]] | None = None

    def search(chosen: list, covered: set, remaining: list) -> None:
        nonlocal best
        if covered == universe:
            if best is None or len(chosen) < len(best):
                best = list(chosen)
            return
        if best is not None and len(chosen) + 1 >= len(best):
            # Even one more pick cannot beat the incumbent unless it finishes.
            pass
        if not remaining:
            return
        if best is not None and len(chosen) >= len(best):
            return
        # Bound: if even using all remaining we cannot cover, prune.
        reachable = set(covered)
        for source in remaining:
            reachable |= covers[source]
        if reachable != universe:
            return
        source, *rest = remaining
        # Branch 1: take it (only if it helps).
        if covers[source] - covered:
            search(chosen + [source], covered | covers[source], rest)
        # Branch 2: skip it.
        search(chosen, covered, rest)

    search([], set(), sources)
    if best is None:
        return None
    delta = RelationalDelta()
    for relation, key in best:
        delta.delete(relation, db.table(relation).get(key))
    return delta
