"""Key preservation on SPJ views (paper, Section 4.1).

An SPJ query ``Q(R1, ..., Rk)`` is *key preserving* if the primary key of
every ``Ri`` is included in ``Q``'s projection (with possible renaming).
The check here is slightly more liberal, and still sound: a key column
counts as projected if the projection contains a column *provably equal*
to it under the equality closure of ``Q``'s selection conjuncts — SQL
renaming through a join condition (``select c.cno ... where p.cno2 =
c.cno``) preserves ``p.cno2`` just as well.

Key preservation is the paper's enabling condition: it makes group
deletions tractable (Theorem 1) and pins the key part of every insertion
tuple template (Section 4.3).  Every edge view built by
:func:`repro.views.registry.build_registry` is key-preserving by
construction; this module is the independent checker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.relational.conditions import Col, Eq
from repro.relational.database import Database
from repro.relational.query import SPJQuery


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def find(self, item: object) -> object:
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: object, b: object) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


@dataclass
class KeyPreservationReport:
    """Outcome of the key-preservation check for one query."""

    query: str
    preserved: bool
    missing: list[tuple[str, str, str]]
    """(relation, alias, key attribute) triples not covered by the projection."""


def _equality_classes(query: SPJQuery) -> _UnionFind:
    classes = _UnionFind()
    for conjunct in query.where.conjuncts():
        if isinstance(conjunct, Eq):
            left, right = conjunct.left, conjunct.right
            if isinstance(left, Col) and isinstance(right, Col):
                classes.union((left.alias, left.attr), (right.alias, right.attr))
    return classes


def key_preservation_report(
    query: SPJQuery, db: Database
) -> KeyPreservationReport:
    """Check whether ``query`` preserves every base relation's key."""
    classes = _equality_classes(query)
    projected_roots = {
        classes.find((col.alias, col.attr)) for _, col in query.project
    }
    missing: list[tuple[str, str, str]] = []
    for relation, alias in query.tables:
        schema = db.schema(relation)
        for key_attr in schema.key:
            if classes.find((alias, key_attr)) not in projected_roots:
                missing.append((relation, alias, key_attr))
    return KeyPreservationReport(query.name, not missing, missing)


def is_key_preserving(query: SPJQuery, db: Database) -> bool:
    """Whether ``query`` is key preserving (Section 4.1)."""
    return key_preservation_report(query, db).preserved


def make_key_preserving(query: SPJQuery, db: Database) -> SPJQuery:
    """Extend the projection so every base key is included.

    The paper (Section 4.1) observes that any SPJ query in an ATG can be
    made key-preserving by widening its select clause — e.g. adding
    ``e.cno`` to ``Q_takenBy_student`` — without changing the ATG's
    expressive power.  Added columns are named ``__kp_<alias>_<attr>``.
    """
    report = key_preservation_report(query, db)
    if report.preserved:
        return query
    project = list(query.project)
    taken = {name for name, _ in project}
    for relation, alias, attr in report.missing:
        name = f"__kp_{alias}_{attr}"
        while name in taken:
            name += "_"
        taken.add(name)
        project.append((name, Col(alias, attr)))
    return SPJQuery(query.name, query.tables, project, query.where)
