"""Baselines and comparators for the evaluation.

- :mod:`repro.baselines.recompute` — batch recomputation of ``L`` and
  ``M`` (the "Recomputation" columns of Table 1);
- :mod:`repro.baselines.naive_reach` — transitive closure without the
  topological-order dynamic programming (the ``O(|V|² log |V|)``
  approach Algorithm Reach improves on, Section 3.1);
- :mod:`repro.baselines.tree_updater` — uncompressed-tree processing:
  publish the full tree, evaluate XPath node-at-a-time, re-publish after
  updates (what a system without DAG compression would do).
"""

from repro.baselines.recompute import recompute_structures, RecomputeTimings
from repro.baselines.naive_reach import naive_reachability, squaring_reachability
from repro.baselines.tree_updater import TreeUpdater

__all__ = [
    "recompute_structures",
    "RecomputeTimings",
    "naive_reachability",
    "squaring_reachability",
    "TreeUpdater",
]
