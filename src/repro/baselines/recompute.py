"""Batch recomputation of the auxiliary structures (Table 1 baseline)."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.topo import TopoOrder
from repro.index import ReachabilityIndex, build_index
from repro.views.store import ViewStore


@dataclass
class RecomputeTimings:
    """Wall-clock seconds to rebuild each structure from scratch."""

    topo_seconds: float
    reach_seconds: float
    topo: TopoOrder
    reach: ReachabilityIndex

    @property
    def total_seconds(self) -> float:
        return self.topo_seconds + self.reach_seconds


def recompute_structures(
    store: ViewStore, index_backend: str = "sets"
) -> RecomputeTimings:
    """Rebuild ``L`` then ``M`` from the current store, timing each."""
    t0 = time.perf_counter()
    topo = TopoOrder.from_store(store)
    t1 = time.perf_counter()
    reach = build_index(store, topo, index_backend)
    t2 = time.perf_counter()
    return RecomputeTimings(t1 - t0, t2 - t1, topo, reach)
