"""Reachability without Algorithm Reach's dynamic programming.

Two comparators for the A-1 ablation:

- :func:`naive_reachability` — independent DFS from every node
  (no sharing of ancestor sets between nodes);
- :func:`squaring_reachability` — semi-naive closure by repeated
  relational composition ``M ← M ∪ M∘E`` until fixpoint, the
  ``O(|V|² log |V|)`` textbook approach the paper cites as the
  alternative to Algorithm Reach (Section 3.1).
"""

from __future__ import annotations

from repro.index import ReachabilityIndex, make_index
from repro.views.store import ViewStore


def naive_reachability(
    store: ViewStore, backend: str = "sets"
) -> ReachabilityIndex:
    """Per-node DFS: recomputes each descendant set from scratch."""
    matrix = make_index(backend)
    for start in sorted(store.nodes()):
        seen: set[int] = set()
        stack = list(store.children_of(start))
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(store.children_of(node))
        for node in seen:
            matrix.insert(start, node)
    return matrix


def squaring_reachability(
    store: ViewStore, backend: str = "sets"
) -> ReachabilityIndex:
    """Semi-naive closure: compose the frontier with the edge relation."""
    desc: dict[int, set[int]] = {
        node: set(store.children_of(node)) for node in store.nodes()
    }
    frontier: dict[int, set[int]] = {n: set(d) for n, d in desc.items()}
    while True:
        new_frontier: dict[int, set[int]] = {}
        for node, reached in frontier.items():
            grown: set[int] = set()
            for mid in reached:
                grown |= desc_base(store, mid)
            fresh = grown - desc[node]
            if fresh:
                desc[node] |= fresh
                new_frontier[node] = fresh
        if not new_frontier:
            break
        frontier = new_frontier
    matrix = make_index(backend)
    for node, reached in desc.items():
        for target in reached:
            matrix.insert(node, target)
    return matrix


def desc_base(store: ViewStore, node: int) -> set[int]:
    return set(store.children_of(node))
