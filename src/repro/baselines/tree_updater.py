"""Uncompressed-tree baseline: what a system without DAG compression does.

The paper motivates DAG compression by the (possibly exponential) blowup
of the unfolded tree and by prior work's tree-only evaluation.  This
baseline materializes the full tree, evaluates XPath node-at-a-time on
it, and re-publishes the whole tree after a base update — the costs the
paper's architecture avoids.  Used by the A-2 ablation benchmarks and as
a cross-check oracle in tests.
"""

from __future__ import annotations

from repro.atg.model import ATG
from repro.atg.publisher import publish_tree
from repro.relational.database import Database
from repro.xmltree.tree import XMLNode, tree_size
from repro.xpath.ast import XPath
from repro.xpath.parser import parse_xpath
from repro.xpath.tree_eval import evaluate_on_tree


class TreeUpdater:
    """Tree-based (uncompressed) view processing."""

    def __init__(self, atg: ATG, db: Database, max_nodes: int = 10_000_000):
        self.atg = atg
        self.db = db
        self.max_nodes = max_nodes
        self.tree: XMLNode = publish_tree(atg, db, max_nodes=max_nodes)

    @property
    def size(self) -> int:
        """Number of element nodes of the unfolded tree."""
        return tree_size(self.tree)

    def evaluate(self, path: str | XPath) -> list[XMLNode]:
        parsed = parse_xpath(path) if isinstance(path, str) else path
        return evaluate_on_tree(parsed, self.tree)

    def republish(self) -> XMLNode:
        """Full re-publication after a base update (no incrementality)."""
        self.tree = publish_tree(self.atg, self.db, max_nodes=self.max_nodes)
        return self.tree
