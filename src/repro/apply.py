"""Apply JSON-lines update operations to a named workload's view.

The smallest end-to-end exercise of the wire format: each input line is
one serialized operation of the algebra (:mod:`repro.ops`), decoded with
:func:`~repro.ops.op_from_json` and fed through the plan/commit
:class:`~repro.service.ViewService`.

Usage::

    python -m repro.apply --workload registrar ops.jsonl
    python -m repro.apply --workload synthetic:300 --policy propagate - < ops.jsonl
    python -m repro.apply --workload registrar --plan-only ops.jsonl   # dry run
    python -m repro.apply --workload registrar --json ops.jsonl        # JSONL out
    python -m repro.apply --workload registrar --wal wal/ ops.jsonl    # durable
    python -m repro.apply --workload registrar --wal wal/ --recover --stats
    # ^ post-crash: recover the log, verify consistency, print WAL stats
    repro-bench generate --ops 100 | python -m repro.apply --metrics - -
    # ^ generated streams carry a provenance header: the workload is
    #   taken from it, and --metrics emits the Prometheus exposition

Input lines look like::

    {"op": "delete", "path": "course[cno=CS650]/prereq/course[cno=CS320]"}
    {"op": "insert", "path": ".", "element": "course", "sem": ["CS700", "Theory"]}
    {"op": "replace", "path": "//course[cno=CS240]", "element": "course",
     "sem": ["CS241", "Data Structures II"]}
    {"op": "base_update", "ops": [["insert", "course", ["CS800", "Quantum", "CS"]]]}

A malformed line is reported to stderr as ``bad input: line N: ...``;
by default (``--stop-on-error``) processing stops there — the ops
before it *stay applied* and the summary says where the stream stopped
— while ``--keep-going`` skips bad lines and processes the rest.
Either way the exit status is nonzero.

Exit status: 0 on success (rejected updates are *reported*, not fatal),
1 when the final consistency check fails, 2 on malformed input (even
with ``--keep-going``) or an environment error (unknown workload,
unreadable file).
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from typing import Iterable, TextIO

from repro.bench.workload_gen import parse_header_line
from repro.errors import OpDecodeError, ReproError
from repro.ops import ops_from_jsonl
from repro.service import ViewConfig, open_view
from repro.workloads import named_workload


def _summary_line(index: int, payload: dict) -> str:
    """One human-readable line per processed operation."""
    dv = payload.get("delta_v") or {}
    dr = payload.get("delta_r") or {}
    status = "ok      " if payload["accepted"] else "REJECTED"
    millis = payload.get("total_time", 0.0) * 1000.0
    line = (
        f"[{index:3d}] {payload['kind']:<11s} {status} "
        f"targets={len(payload['targets'])} "
        f"|dV|={dv.get('insertions', 0) + dv.get('deletions', 0)} "
        f"|dR|={dr.get('insertions', 0) + dr.get('deletions', 0)} "
        f"{millis:8.2f}ms"
    )
    if not payload["accepted"] and payload.get("reason"):
        line += f"  ({payload['reason']})"
    return line


def run(
    lines: Iterable[str],
    workload: str | None = None,
    policy: str = "abort",
    index_backend: str = "auto",
    plan_only: bool = False,
    as_json: bool = False,
    stop_on_error: bool = True,
    show_stats: bool = False,
    snapshot_path: str | None = None,
    wal_dir: str | None = None,
    wal_fsync: str = "batch",
    recover_only: bool = False,
    metrics_path: str | None = None,
    out: TextIO | None = None,
) -> int:
    """Drive the service with a JSONL op stream; returns the exit code.

    Malformed lines are reported with their line number; earlier ops
    stay applied either way.  ``stop_on_error`` (default) stops the
    stream at the first bad line, otherwise bad lines are skipped.

    A first line that is a ``repro-bench generate`` provenance header
    is consumed (not treated as an op); with ``workload=None`` the
    header's recorded workload is used, so ``repro-bench generate ... |
    python -m repro.apply -`` targets the dataset the stream was built
    for.  Without a header, ``workload=None`` means ``'registrar'``.

    ``wal_dir`` makes the service durable: commits are logged, and a
    non-empty directory is recovered before the stream is applied (so
    successive invocations with the same ``--wal`` accumulate).
    ``recover_only`` skips the stream entirely — recover, verify,
    report, exit — which is the post-crash health check.

    ``metrics_path`` writes the service's Prometheus exposition
    (:meth:`~repro.service.facade.ViewService.metrics_text`) there
    after the run — ``'-'`` for stdout.
    """
    if out is None:
        out = sys.stdout
    if metrics_path == "-" and out is sys.stdout:
        # Keep stdout a clean exposition (pipeable into
        # scripts/validate_metrics.py); the human report moves aside.
        out = sys.stderr
    header = None
    lines = iter(lines)
    first = next(lines, None)
    if first is not None:
        header = parse_header_line(first)
        if header is None:
            lines = itertools.chain([first], lines)
    if workload is None:
        params = (header or {}).get("params", {})
        workload = params.get("workload", "registrar")
    atg, db = named_workload(workload)
    config = ViewConfig(
        side_effects=policy,
        index_backend=index_backend,
        strict=False,
        wal_dir=wal_dir,
        wal_fsync=wal_fsync,
    )
    service = open_view(atg, db, config=config)
    if wal_dir is not None and not as_json:
        print(
            f"wal: recovered generation {service.stats()['generation']} "
            f"from {wal_dir}",
            file=out,
        )
    if recover_only:
        lines = ()
    if header is not None and not as_json:
        params = header.get("params", {})
        print(
            f"stream: provenance header consumed (workload "
            f"{params.get('workload')!r}, pattern "
            f"{params.get('pattern')!r}, seed {header.get('seed')})",
            file=out,
        )
    accepted = rejected = count = bad_lines = 0
    stopped_at: int | None = None

    def on_error(lineno: int, exc: OpDecodeError) -> bool:
        nonlocal bad_lines, stopped_at
        bad_lines += 1
        print(f"bad input: line {lineno}: {exc}", file=sys.stderr)
        if stop_on_error:
            stopped_at = lineno
            return False
        return True

    for op in ops_from_jsonl(lines, on_error=on_error):
        count += 1
        if plan_only:
            plan = service.plan(op)
            payload = plan.to_dict(include_deltas=as_json)
            if plan.accepted:
                plan.abort()
        else:
            outcome = service.apply(op)
            payload = outcome.to_dict(include_deltas=as_json)
        if payload["accepted"]:
            accepted += 1
        else:
            rejected += 1
        if as_json:
            print(json.dumps(payload, sort_keys=True), file=out)
        else:
            print(_summary_line(count, payload), file=out)
    problems = service.check_consistency()
    if not as_json:
        mode = "planned (dry run)" if plan_only else "applied"
        stats = service.stats()
        trailer = ""
        if stopped_at is not None:
            trailer = f"; stopped at line {stopped_at}"
        elif bad_lines:
            trailer = f"; {bad_lines} malformed line(s) skipped"
        print(
            f"{count} op(s) {mode} against {workload!r}: "
            f"{accepted} accepted, {rejected} rejected; "
            f"view now {stats['nodes']} nodes / {stats['edges']} edges; "
            f"consistency {'OK' if not problems else 'FAILED'}{trailer}",
            file=out,
        )
    if show_stats:
        # Provenance line for benchmark records: which engine actually
        # ran (``auto`` resolves per environment) and how big ``M`` is.
        stats = service.stats()
        print(
            f"index backend: {stats['index_backend']} "
            f"(requested {index_backend!r}); "
            f"|M| = {stats['reach_pairs']} reachability pairs",
            file=out,
        )
        # Snapshot-freshness line: the current generation plus how much
        # of the changefeed's bounded replay buffer is occupied tells a
        # replica operator whether changefeed(since=<snapshot gen>)
        # can still attach gaplessly.
        feed = stats["changefeed"]
        print(
            f"generation: {stats['generation']}; changefeed buffer: "
            f"{feed['retained']}/{feed['retention']} event(s) retained "
            f"(replay floor {feed['floor']}, "
            f"{feed['consumers']} consumer(s))",
            file=out,
        )
        # Durable-log line: what a recovery of this directory would see.
        wal = stats["wal"]
        if wal is not None:
            print(
                f"wal: {wal['records']} record(s) across "
                f"{wal['segments']} segment(s) (fsync={wal['fsync']}, "
                f"{wal['rotations']} rotation(s)); "
                f"{len(wal['checkpoints'])} checkpoint(s) at "
                f"{[c['generation'] for c in wal['checkpoints']]}; "
                f"replay floor {wal['floor']}, "
                f"last generation {wal['last_generation']}",
                file=out,
            )
    if snapshot_path is not None:
        snapshot = service.snapshot()
        snapshot.save(snapshot_path)
        print(
            f"snapshot: generation {snapshot.generation}, "
            f"{snapshot.num_nodes} nodes / {snapshot.num_edges} edges "
            f"-> {snapshot_path}",
            file=out,
        )
    if metrics_path is not None:
        exposition = service.metrics_text()
        if metrics_path == "-":
            sys.stdout.write(exposition)
        else:
            with open(metrics_path, "w", encoding="utf-8") as handle:
                handle.write(exposition)
    if problems:
        for problem in problems:
            print(f"consistency: {problem}", file=sys.stderr)
    service.close()  # flush the WAL tail per the fsync policy
    if bad_lines:
        return 2  # malformed input wins, as the docstring promises
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apply",
        description="Apply JSON-lines update ops to a named workload view.",
    )
    parser.add_argument(
        "ops_file",
        nargs="?",
        default=None,
        help="JSONL file of operations, or '-' for stdin (optional "
        "with --recover)",
    )
    parser.add_argument(
        "--workload",
        default=None,
        help="registrar | bom | synthetic[:n_c[:seed]] | chain[:depth] "
        "(default: the input stream's provenance header if present, "
        "else registrar)",
    )
    parser.add_argument(
        "--policy",
        choices=("abort", "propagate"),
        default="abort",
        help="side-effect policy (default: abort)",
    )
    parser.add_argument(
        "--backend",
        dest="index_backend",
        default="auto",
        help="reachability-index backend (auto | matrix | bitset | sets)",
    )
    parser.add_argument(
        "--stats",
        dest="show_stats",
        action="store_true",
        help="after the run, print the resolved index backend and |M| "
        "(benchmark provenance)",
    )
    parser.add_argument(
        "--snapshot",
        dest="snapshot_path",
        metavar="PATH",
        default=None,
        help="after the run, save a replication snapshot artifact to "
        "PATH (gzip-compressed; bootstrap a replica from it with "
        "python -m repro.replica)",
    )
    parser.add_argument(
        "--wal",
        dest="wal_dir",
        metavar="DIR",
        default=None,
        help="durable changefeed log directory: commits are logged, "
        "and an existing log is recovered before the stream is applied "
        "(crash-safe; see docs/durability.md)",
    )
    parser.add_argument(
        "--wal-fsync",
        dest="wal_fsync",
        choices=("always", "batch", "os"),
        default="batch",
        help="the log's fsync policy (default: batch)",
    )
    parser.add_argument(
        "--recover",
        dest="recover_only",
        action="store_true",
        help="recover the --wal directory, run the consistency check, "
        "report and exit without applying any ops (post-crash health "
        "check)",
    )
    parser.add_argument(
        "--metrics",
        dest="metrics_path",
        metavar="PATH",
        default=None,
        help="after the run, write the service's Prometheus text "
        "exposition to PATH ('-' = stdout; the summary then moves to "
        "stderr so the exposition stays pipeable into "
        "scripts/validate_metrics.py)",
    )
    parser.add_argument(
        "--plan-only",
        action="store_true",
        help="dry run: plan each op, print the preview, abort it",
    )
    parser.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit one JSON outcome per line instead of the summary table",
    )
    errors = parser.add_mutually_exclusive_group()
    errors.add_argument(
        "--stop-on-error",
        dest="stop_on_error",
        action="store_true",
        default=True,
        help="stop at the first malformed line (default); earlier ops "
        "stay applied and the failing line number is reported",
    )
    errors.add_argument(
        "--keep-going",
        dest="stop_on_error",
        action="store_false",
        help="skip malformed lines (reported with their line number) "
        "and process the rest; exit status is still nonzero",
    )
    args = parser.parse_args(argv)
    if args.recover_only and args.wal_dir is None:
        parser.error("--recover requires --wal DIR")
    if args.ops_file is None and not args.recover_only:
        parser.error("ops_file is required unless --recover is given")
    kwargs = dict(
        workload=args.workload,
        policy=args.policy,
        index_backend=args.index_backend,
        plan_only=args.plan_only,
        as_json=args.as_json,
        stop_on_error=args.stop_on_error,
        show_stats=args.show_stats,
        snapshot_path=args.snapshot_path,
        wal_dir=args.wal_dir,
        wal_fsync=args.wal_fsync,
        recover_only=args.recover_only,
        metrics_path=args.metrics_path,
    )
    try:
        if args.ops_file is None or args.recover_only:
            return run((), **kwargs)
        if args.ops_file == "-":
            return run(sys.stdin, **kwargs)
        with open(args.ops_file, "r", encoding="utf-8") as handle:
            return run(handle, **kwargs)
    except (OSError, ReproError) as exc:
        # Decode errors are handled per line inside run(); this covers
        # environment failures (unknown workload, unreadable file).
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
