"""Apply JSON-lines update operations to a named workload's view.

The smallest end-to-end exercise of the wire format: each input line is
one serialized operation of the algebra (:mod:`repro.ops`), decoded with
:func:`~repro.ops.op_from_json` and fed through the plan/commit
:class:`~repro.service.ViewService`.

Usage::

    python -m repro.apply --workload registrar ops.jsonl
    python -m repro.apply --workload synthetic:300 --policy propagate - < ops.jsonl
    python -m repro.apply --workload registrar --plan-only ops.jsonl   # dry run
    python -m repro.apply --workload registrar --json ops.jsonl        # JSONL out

Input lines look like::

    {"op": "delete", "path": "course[cno=CS650]/prereq/course[cno=CS320]"}
    {"op": "insert", "path": ".", "element": "course", "sem": ["CS700", "Theory"]}
    {"op": "replace", "path": "//course[cno=CS240]", "element": "course",
     "sem": ["CS241", "Data Structures II"]}
    {"op": "base_update", "ops": [["insert", "course", ["CS800", "Quantum", "CS"]]]}

Exit status: 0 on success (rejected updates are *reported*, not fatal),
1 when the final consistency check fails, 2 on malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable, TextIO

from repro.errors import OpDecodeError, ReproError
from repro.ops import ops_from_jsonl
from repro.service import ViewConfig, open_view
from repro.workloads import named_workload


def _summary_line(index: int, payload: dict) -> str:
    """One human-readable line per processed operation."""
    dv = payload.get("delta_v") or {}
    dr = payload.get("delta_r") or {}
    status = "ok      " if payload["accepted"] else "REJECTED"
    millis = payload.get("total_time", 0.0) * 1000.0
    line = (
        f"[{index:3d}] {payload['kind']:<11s} {status} "
        f"targets={len(payload['targets'])} "
        f"|dV|={dv.get('insertions', 0) + dv.get('deletions', 0)} "
        f"|dR|={dr.get('insertions', 0) + dr.get('deletions', 0)} "
        f"{millis:8.2f}ms"
    )
    if not payload["accepted"] and payload.get("reason"):
        line += f"  ({payload['reason']})"
    return line


def run(
    lines: Iterable[str],
    workload: str = "registrar",
    policy: str = "abort",
    index_backend: str = "auto",
    plan_only: bool = False,
    as_json: bool = False,
    out: TextIO | None = None,
) -> int:
    """Drive the service with a JSONL op stream; returns the exit code."""
    if out is None:
        out = sys.stdout
    atg, db = named_workload(workload)
    config = ViewConfig(
        side_effects=policy, index_backend=index_backend, strict=False
    )
    service = open_view(atg, db, config=config)
    accepted = rejected = count = 0
    for op in ops_from_jsonl(lines):
        count += 1
        if plan_only:
            plan = service.plan(op)
            payload = plan.to_dict(include_deltas=as_json)
            if plan.accepted:
                plan.abort()
        else:
            outcome = service.apply(op)
            payload = outcome.to_dict(include_deltas=as_json)
        if payload["accepted"]:
            accepted += 1
        else:
            rejected += 1
        if as_json:
            print(json.dumps(payload, sort_keys=True), file=out)
        else:
            print(_summary_line(count, payload), file=out)
    problems = service.check_consistency()
    if not as_json:
        mode = "planned (dry run)" if plan_only else "applied"
        stats = service.stats()
        print(
            f"{count} op(s) {mode} against {workload!r}: "
            f"{accepted} accepted, {rejected} rejected; "
            f"view now {stats['nodes']} nodes / {stats['edges']} edges; "
            f"consistency {'OK' if not problems else 'FAILED'}",
            file=out,
        )
    if problems:
        for problem in problems:
            print(f"consistency: {problem}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.apply",
        description="Apply JSON-lines update ops to a named workload view.",
    )
    parser.add_argument(
        "ops_file",
        help="JSONL file of operations, or '-' for stdin",
    )
    parser.add_argument(
        "--workload",
        default="registrar",
        help="registrar | bom | synthetic[:n_c[:seed]] | chain[:depth]",
    )
    parser.add_argument(
        "--policy",
        choices=("abort", "propagate"),
        default="abort",
        help="side-effect policy (default: abort)",
    )
    parser.add_argument(
        "--backend",
        dest="index_backend",
        default="auto",
        help="reachability-index backend (auto | bitset | sets)",
    )
    parser.add_argument(
        "--plan-only",
        action="store_true",
        help="dry run: plan each op, print the preview, abort it",
    )
    parser.add_argument(
        "--json",
        dest="as_json",
        action="store_true",
        help="emit one JSON outcome per line instead of the summary table",
    )
    args = parser.parse_args(argv)
    try:
        if args.ops_file == "-":
            lines = sys.stdin
            return run(
                lines,
                workload=args.workload,
                policy=args.policy,
                index_backend=args.index_backend,
                plan_only=args.plan_only,
                as_json=args.as_json,
            )
        with open(args.ops_file, "r", encoding="utf-8") as handle:
            return run(
                handle,
                workload=args.workload,
                policy=args.policy,
                index_backend=args.index_backend,
                plan_only=args.plan_only,
                as_json=args.as_json,
            )
    except OpDecodeError as exc:
        print(f"bad input: {exc}", file=sys.stderr)
        return 2
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
