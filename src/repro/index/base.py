"""The pluggable reachability-index interface.

A :class:`ReachabilityIndex` is the paper's matrix ``M``: the set of
(ancestor, descendant) pairs of the DAG view, with O(1) membership and
row access in both directions.  Every consumer (Algorithm Reach, the
Δ(M,L) maintenance algorithms, the DAG XPath evaluator, the updater)
talks to this interface only, so the physical representation is a
backend choice:

- ``sets``   — :class:`~repro.index.sets.SetReachabilityIndex`, the
  original dict-of-``set`` matrix, kept as the reference/oracle;
- ``bitset`` — :class:`~repro.index.bitset.BitsetReachabilityIndex`,
  one arbitrary-precision ``int`` bitmask per row keyed by the store's
  dense node ids (union = ``|``, membership = ``>> k & 1``, cardinality
  = ``int.bit_count()``).

Besides the point queries/mutations the interface carries the *bulk*
operations the hot loops are written against — ``recompute`` (Algorithm
Reach), ``extend_ancestors`` / ``add_cross_pairs`` (Δ(M,L)insert),
``retain_ancestors`` (Δ(M,L)delete) and ``anc_of_set`` / ``desc_of_set``
(region queries) — so each backend can implement them in its native
representation instead of per-pair calls.

Row accessors (``anc``/``desc``/``anc_of_set``/``desc_of_set``) return
**detached** sets: mutating the result never corrupts the index.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.topo import TopoOrder
    from repro.views.store import ViewStore


class ReachabilityIndex(ABC):
    """Abstract reachability matrix ``M`` over dense integer node ids."""

    __slots__ = ()

    #: Registry name of the concrete backend ("sets", "bitset", ...).
    backend: str = "abstract"

    #: Whether :meth:`desc_mask_of_set` is backed by a physical bit
    #: representation (no Python-set materialization).  Consumers like
    #: the DAG evaluator branch on this to keep region unions in mask
    #: space on the fast backends while staying set-based on ``sets``.
    native_masks: bool = False

    # -- queries ------------------------------------------------------------------

    @abstractmethod
    def anc(self, node: int) -> set[int]:
        """Proper ancestors of ``node`` as a *detached* set."""

    @abstractmethod
    def desc(self, node: int) -> set[int]:
        """Proper descendants of ``node`` as a *detached* set."""

    @abstractmethod
    def is_ancestor(self, a: int, d: int) -> bool:
        """Is bit ``(a, d)`` set?"""

    @abstractmethod
    def __len__(self) -> int:
        """|M|: number of set bits (stored (anc, desc) pairs)."""

    @abstractmethod
    def pairs(self) -> Iterator[tuple[int, int]]:
        """Iterate every stored ``(anc, desc)`` pair."""

    @abstractmethod
    def anc_of_set(self, nodes: Iterable[int]) -> set[int]:
        """Union of proper ancestors over ``nodes`` (detached)."""

    @abstractmethod
    def desc_of_set(self, nodes: Iterable[int]) -> set[int]:
        """Union of proper descendants over ``nodes`` (detached)."""

    def __contains__(self, pair: tuple[int, int]) -> bool:
        a, d = pair
        return self.is_ancestor(a, d)

    def desc_view(self, node: int):
        """Read-only membership view of ``desc(node)``.

        Unlike :meth:`desc` this may alias backend internals (it exists
        to avoid materializing large rows for a membership test, e.g.
        the ``swap`` repair of ``L``) — callers must not mutate it and
        must not hold it across index mutations.
        """
        return self.desc(node)

    def desc_mask_of_set(self, nodes: Iterable[int]):
        """Union of proper descendants over ``nodes`` as a
        :class:`~repro.index._bits.MaskView`.

        The mask-returning sibling of :meth:`desc_of_set` for consumers
        that only need membership/iteration (the evaluator's region
        unions).  Backends with :attr:`native_masks` build the mask by
        OR-ing rows directly; this default round-trips through the set
        form, so it is only a compatibility shim for the ``sets``
        backend.  Same detachment contract as :meth:`desc_of_set`.
        """
        from repro.index._bits import MaskView, mask_of

        return MaskView(mask_of(self.desc_of_set(nodes)))

    # -- point mutation -----------------------------------------------------------

    @abstractmethod
    def insert(self, anc: int, desc: int) -> bool:
        """Set bit (anc, desc); returns True if newly set."""

    @abstractmethod
    def remove(self, anc: int, desc: int) -> bool:
        """Clear bit (anc, desc); returns True if it was set."""

    @abstractmethod
    def set_ancestors(self, node: int, ancestors: set[int]) -> None:
        """Replace the ancestor set of ``node`` wholesale."""

    @abstractmethod
    def drop_node(self, node: int) -> None:
        """Remove every pair mentioning ``node``."""

    @abstractmethod
    def clear(self) -> None:
        """Remove every pair."""

    # -- bulk operations (the hot loops) -------------------------------------------

    @abstractmethod
    def recompute(self, store: "ViewStore", topo: "TopoOrder") -> None:
        """Algorithm Reach (paper, Fig. 4) into ``self``, replacing it.

        Processes nodes in backward topological order (ancestors first):
        a node's ancestor row is the union of its parents and their
        already-computed rows.
        """

    @abstractmethod
    def extend_ancestors(self, node: int, parents: Iterable[int]) -> int:
        """Add ``{p} ∪ anc(p)`` for every parent to ``node``'s ancestors.

        The localized-Reach step of Δ(M,L)insert.  Never removes pairs;
        returns the number of pairs newly added.
        """

    @abstractmethod
    def add_cross_pairs(
        self, upper: Iterable[int], lower: Iterable[int]
    ) -> int:
        """Set bit (a, d) for every ``a`` in upper, ``d`` in lower.

        The cross-product step of Δ(M,L)insert (``anc*(r[[p]]) ×
        ST(A, t)``).  Returns the number of pairs newly added.
        """

    def add_anc_closure_pairs(
        self, targets: Iterable[int], lower: Iterable[int]
    ) -> int:
        """``add_cross_pairs(targets ∪ anc_of_set(targets), lower)``.

        Fused so backends can form the upper closure natively (the
        bitset backend never materializes it as a Python set).
        """
        targets = list(targets)
        return self.add_cross_pairs(
            set(targets) | self.anc_of_set(targets), lower
        )

    @abstractmethod
    def retain_ancestors(self, node: int, parents: Iterable[int]) -> int:
        """Drop ancestors of ``node`` not derivable from ``parents``.

        The per-node step of Δ(M,L)delete: keep only ``{p} ∪ anc(p)``
        over the surviving parents.  Never adds pairs; returns the
        number of pairs removed.
        """

    def retain_sweep(
        self, store: "ViewStore", lr: list[int], root_id: int | None
    ) -> tuple[int, list[int]]:
        """The full ancestor-recomputation sweep of Δ(M,L)delete.

        ``lr`` is the affected region in topological order (descendants
        first); the sweep walks it ancestors-first, recomputing each
        node's ancestor row from its surviving parents and condemning
        nodes left with no surviving parent (``keep := false``).  The
        store must not be mutated while the sweep runs — callers apply
        the garbage-collection feed afterwards.

        Returns ``(removed_pairs, condemned)`` with ``condemned`` in
        ancestors-first order.  Backends may override this with a bulk
        implementation; the default is the per-node loop over
        :meth:`retain_ancestors`.
        """
        removed = 0
        condemned: set[int] = set()
        order: list[int] = []
        for node in reversed(lr):  # ancestors first
            parents = store.parents_of(node)
            surviving = (
                [p for p in parents if p not in condemned]
                if condemned
                else parents
            )
            removed += self.retain_ancestors(node, surviving)
            if not surviving and node != root_id:
                condemned.add(node)
                order.append(node)
        return removed, order

    # -- management -----------------------------------------------------------------

    @abstractmethod
    def copy(self) -> "ReachabilityIndex":
        """An independent deep copy (same backend)."""

    def equals(self, other: "ReachabilityIndex") -> bool:
        """Same set of (anc, desc) pairs — works across backends."""
        return len(self) == len(other) and set(self.pairs()) == set(
            other.pairs()
        )

    def diff(
        self, other: "ReachabilityIndex"
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        """Pair delta ``self − other`` as ``(added, removed)``.

        ``other`` is typically a :meth:`copy` snapshot taken before a
        repair, so ``added`` are the pairs the repair set and
        ``removed`` the pairs it cleared.  Both lists are sorted for
        determinism.  Backends with a physical bit representation
        override this with a bulk XOR.
        """
        mine = set(self.pairs())
        theirs = set(other.pairs())
        return sorted(mine - theirs), sorted(theirs - mine)

    def check_invariants(self) -> list[str]:
        """Internal-consistency report (empty list = healthy).

        Checks that the ancestor and descendant mirrors are exact
        transposes and that ``len(self)`` equals the true pair count.
        """
        problems: list[str] = []
        anc_pairs = set(self.pairs())
        desc_pairs = {
            (a, d)
            for a in {p for p, _ in anc_pairs} | self._desc_keys()
            for d in self.desc(a)
        }
        if anc_pairs != desc_pairs:
            missing = sorted(anc_pairs - desc_pairs)[:5]
            extra = sorted(desc_pairs - anc_pairs)[:5]
            problems.append(
                f"anc/desc mirrors disagree: desc missing {missing}, "
                f"desc extra {extra}"
            )
        if len(self) != len(anc_pairs):
            problems.append(
                f"pair count {len(self)} != true count {len(anc_pairs)}"
            )
        return problems

    @abstractmethod
    def _desc_keys(self) -> set[int]:
        """Nodes with a (possibly empty) stored descendant row."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} backend={self.backend} |M|={len(self)}>"
