"""Pluggable reachability-index engine (the paper's matrix ``M``).

The index subsystem decouples *what* ``M`` answers (ancestor /
descendant queries, Algorithm Reach, the Δ(M,L) bulk maintenance steps)
from *how* it is stored.  Two interchangeable backends ship:

==========  ==================================================  =========
name        representation                                      role
==========  ==================================================  =========
``sets``    dict of ``set[int]`` rows (the original matrix)     oracle
``bitset``  dict of ``int`` bitmask rows over dense node ids    fast path
==========  ==================================================  =========

``"auto"`` resolves to the fastest backend for the store at hand —
currently always ``bitset``, since view-store node ids are dense
integers by construction.

Use :func:`make_index` for an empty index, :func:`build_index` to run
Algorithm Reach over a store, and :data:`BACKENDS` to enumerate what is
available (the cross-backend equivalence tests iterate it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.index.base import ReachabilityIndex
from repro.index.bitset import BitsetReachabilityIndex
from repro.index.sets import SetReachabilityIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.topo import TopoOrder
    from repro.views.store import ViewStore

#: Concrete backends by registry name.
BACKENDS: dict[str, type[ReachabilityIndex]] = {
    SetReachabilityIndex.backend: SetReachabilityIndex,
    BitsetReachabilityIndex.backend: BitsetReachabilityIndex,
}

#: What ``"auto"`` resolves to.  Node ids are dense integers, so the
#: bitset backend wins on every workload we measure (see
#: ``benchmarks/test_index_backends.py``).
AUTO_BACKEND = BitsetReachabilityIndex.backend


def resolve_backend(backend: str) -> str:
    """Normalize a backend name; ``"auto"`` picks the default fast path."""
    if backend == "auto":
        return AUTO_BACKEND
    if backend not in BACKENDS:
        known = ", ".join(sorted(BACKENDS) + ["auto"])
        raise ReproError(
            f"unknown reachability-index backend {backend!r} (known: {known})"
        )
    return backend


def make_index(backend: str = "auto") -> ReachabilityIndex:
    """An empty reachability index of the given backend."""
    return BACKENDS[resolve_backend(backend)]()


def build_index(
    store: "ViewStore", topo: "TopoOrder", backend: str = "auto"
) -> ReachabilityIndex:
    """Algorithm Reach: compute ``M`` for ``store`` in ``O(n·|V|)``."""
    index = make_index(backend)
    index.recompute(store, topo)
    return index


__all__ = [
    "AUTO_BACKEND",
    "BACKENDS",
    "BitsetReachabilityIndex",
    "ReachabilityIndex",
    "SetReachabilityIndex",
    "build_index",
    "make_index",
    "resolve_backend",
]
