"""Pluggable reachability-index engine (the paper's matrix ``M``).

The index subsystem decouples *what* ``M`` answers (ancestor /
descendant queries, Algorithm Reach, the Δ(M,L) bulk maintenance steps)
from *how* it is stored.  Three interchangeable backends ship:

==========  ==================================================  =========
name        representation                                      role
==========  ==================================================  =========
``sets``    dict of ``set[int]`` rows (the original matrix)     oracle
``bitset``  dict of ``int`` bitmask rows over dense node ids    fast path
``matrix``  dense NumPy ``uint64`` bit matrix                   fastest
==========  ==================================================  =========

``matrix`` needs NumPy, which is an optional extra (``pip install
repro[fast]``); it is registered only when NumPy imports.  ``"auto"``
resolves to the fastest available backend — ``matrix`` when NumPy is
importable, else ``bitset`` — and can be overridden with the
``REPRO_INDEX_BACKEND`` environment variable.  Asking for ``matrix``
explicitly without NumPy raises
:class:`~repro.errors.MissingDependencyError`.

Use :func:`make_index` for an empty index, :func:`build_index` to run
Algorithm Reach over a store, and :data:`BACKENDS` to enumerate what is
available (the cross-backend equivalence tests iterate it).
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.errors import MissingDependencyError, ReproError
from repro.index.base import ReachabilityIndex
from repro.index.bitset import BitsetReachabilityIndex
from repro.index.sets import SetReachabilityIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.topo import TopoOrder
    from repro.views.store import ViewStore

#: Concrete backends by registry name.
BACKENDS: dict[str, type[ReachabilityIndex]] = {
    SetReachabilityIndex.backend: SetReachabilityIndex,
    BitsetReachabilityIndex.backend: BitsetReachabilityIndex,
}

try:  # NumPy is optional: register the matrix backend only if it imports.
    from repro.index.matrix import MatrixReachabilityIndex
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI leg
    MatrixReachabilityIndex = None  # type: ignore[assignment, misc]
else:
    BACKENDS[MatrixReachabilityIndex.backend] = MatrixReachabilityIndex

#: Environment variable that overrides what ``"auto"`` resolves to.
ENV_BACKEND = "REPRO_INDEX_BACKEND"

#: What ``"auto"`` resolves to (absent an environment override): the
#: dense NumPy matrix when available, else the big-int bitset — node ids
#: are dense integers, so both beat the sets oracle on every workload we
#: measure (see ``benchmarks/test_ablation_index_backends.py``).
AUTO_BACKEND = (
    "matrix" if "matrix" in BACKENDS else BitsetReachabilityIndex.backend
)


def resolve_backend(backend: str) -> str:
    """Normalize a backend name; ``"auto"`` picks the default fast path.

    ``"auto"`` honors the ``REPRO_INDEX_BACKEND`` environment variable
    when it is set (and not itself ``auto``); explicit names always win
    over the environment.
    """
    source = ""
    if backend == "auto":
        env = os.environ.get(ENV_BACKEND, "").strip()
        if env and env != "auto":
            backend = env
            source = f" (from ${ENV_BACKEND})"
        else:
            return AUTO_BACKEND
    if backend not in BACKENDS:
        if backend == "matrix":
            raise MissingDependencyError(
                f"reachability-index backend 'matrix'{source} requires "
                "NumPy, which is not installed; install the optional "
                "extra (pip install repro[fast]) or use "
                "index_backend='auto' to fall back to 'bitset'"
            )
        known = ", ".join(sorted(BACKENDS) + ["auto"])
        raise ReproError(
            f"unknown reachability-index backend {backend!r}{source} "
            f"(known: {known})"
        )
    return backend


def make_index(backend: str = "auto") -> ReachabilityIndex:
    """An empty reachability index of the given backend."""
    return BACKENDS[resolve_backend(backend)]()


def build_index(
    store: "ViewStore", topo: "TopoOrder", backend: str = "auto"
) -> ReachabilityIndex:
    """Algorithm Reach: compute ``M`` for ``store`` in ``O(n·|V|)``."""
    index = make_index(backend)
    index.recompute(store, topo)
    return index


__all__ = [
    "AUTO_BACKEND",
    "BACKENDS",
    "BitsetReachabilityIndex",
    "ENV_BACKEND",
    "MatrixReachabilityIndex",
    "ReachabilityIndex",
    "SetReachabilityIndex",
    "build_index",
    "make_index",
    "resolve_backend",
]
