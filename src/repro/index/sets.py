"""The reference reachability backend: two mirrored dict-of-``set`` maps.

This is the original :class:`ReachabilityMatrix` of
``repro.core.reachability``, moved behind the
:class:`~repro.index.base.ReachabilityIndex` interface and kept as the
oracle the bitset backend is validated against.  ``M`` is "physically
stored" as the set of its set bits — two mutually consistent adjacency
maps (node → ancestors, node → descendants), the in-memory equivalent of
the paper's ``M(anc, desc)`` relation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.index.base import ReachabilityIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.topo import TopoOrder
    from repro.views.store import ViewStore


class SetReachabilityIndex(ReachabilityIndex):
    """Sparse reachability matrix with both-direction access."""

    backend = "sets"

    __slots__ = ("_anc", "_desc", "_pairs")

    def __init__(self) -> None:
        self._anc: dict[int, set[int]] = {}
        self._desc: dict[int, set[int]] = {}
        self._pairs = 0

    # -- queries ------------------------------------------------------------------

    def anc(self, node: int) -> set[int]:
        """Proper ancestors of ``node`` (excludes the node itself)."""
        return set(self._anc.get(node, ()))

    def desc(self, node: int) -> set[int]:
        """Proper descendants of ``node`` (excludes the node itself)."""
        return set(self._desc.get(node, ()))

    def is_ancestor(self, a: int, d: int) -> bool:
        return d in self._desc.get(a, ())

    def desc_view(self, node: int):
        return self._desc.get(node, frozenset())

    def __len__(self) -> int:
        return self._pairs

    def pairs(self) -> Iterator[tuple[int, int]]:
        for desc_node, ancestors in self._anc.items():
            for anc_node in ancestors:
                yield (anc_node, desc_node)

    def anc_of_set(self, nodes: Iterable[int]) -> set[int]:
        out: set[int] = set()
        rows = self._anc
        for node in nodes:
            row = rows.get(node)
            if row:
                out |= row
        return out

    def desc_of_set(self, nodes: Iterable[int]) -> set[int]:
        out: set[int] = set()
        rows = self._desc
        for node in nodes:
            row = rows.get(node)
            if row:
                out |= row
        return out

    # -- point mutation -----------------------------------------------------------

    def insert(self, anc: int, desc: int) -> bool:
        bucket = self._anc.setdefault(desc, set())
        if anc in bucket:
            return False
        bucket.add(anc)
        self._desc.setdefault(anc, set()).add(desc)
        self._pairs += 1
        return True

    def remove(self, anc: int, desc: int) -> bool:
        bucket = self._anc.get(desc)
        if bucket is None or anc not in bucket:
            return False
        bucket.discard(anc)
        self._desc.get(anc, set()).discard(desc)
        self._pairs -= 1
        return True

    def set_ancestors(self, node: int, ancestors: set[int]) -> None:
        old = self._anc.get(node, set())
        for anc in old - ancestors:
            self._desc.get(anc, set()).discard(node)
            self._pairs -= 1
        for anc in ancestors - old:
            self._desc.setdefault(anc, set()).add(node)
            self._pairs += 1
        self._anc[node] = set(ancestors)

    def drop_node(self, node: int) -> None:
        for anc in self._anc.pop(node, set()):
            self._desc.get(anc, set()).discard(node)
            self._pairs -= 1
        for desc in self._desc.pop(node, set()):
            self._anc.get(desc, set()).discard(node)
            self._pairs -= 1

    def clear(self) -> None:
        self._anc.clear()
        self._desc.clear()
        self._pairs = 0

    # -- bulk operations ------------------------------------------------------------

    def recompute(self, store: "ViewStore", topo: "TopoOrder") -> None:
        self.clear()
        rows = self._anc
        for node in topo.backward():
            ancestors: set[int] = set()
            for parent in store.parents_of(node):
                ancestors.add(parent)
                row = rows.get(parent)
                if row:
                    ancestors |= row
            if ancestors:
                self.set_ancestors(node, ancestors)

    def extend_ancestors(self, node: int, parents: Iterable[int]) -> int:
        rows = self._anc
        gained: set[int] = set()
        for parent in parents:
            gained.add(parent)
            row = rows.get(parent)
            if row:
                gained |= row
        old = rows.get(node)
        if old is not None:
            gained -= old
        if not gained:
            return 0
        if old is None:
            rows[node] = set(gained)
        else:
            old |= gained
        mirror = self._desc
        for anc in gained:
            mirror.setdefault(anc, set()).add(node)
        self._pairs += len(gained)
        return len(gained)

    def add_cross_pairs(
        self, upper: Iterable[int], lower: Iterable[int]
    ) -> int:
        uppers = set(upper)
        if not uppers:
            return 0
        rows = self._anc
        mirror = self._desc
        added = 0
        for node in lower:
            row = rows.setdefault(node, set())
            new = uppers - row
            if not new:
                continue
            row |= new
            added += len(new)
            for anc in new:
                mirror.setdefault(anc, set()).add(node)
        self._pairs += added
        return added

    def retain_ancestors(self, node: int, parents: Iterable[int]) -> int:
        rows = self._anc
        keep: set[int] = set()
        for parent in parents:
            keep.add(parent)
            row = rows.get(parent)
            if row:
                keep |= row
        old = rows.get(node)
        if not old:
            return 0
        removed = old - keep
        if not removed:
            return 0
        mirror = self._desc
        for anc in removed:
            mirror.get(anc, set()).discard(node)
        rows[node] = old & keep
        self._pairs -= len(removed)
        return len(removed)

    # -- management -----------------------------------------------------------------

    def copy(self) -> "SetReachabilityIndex":
        clone = SetReachabilityIndex()
        clone._anc = {n: set(s) for n, s in self._anc.items()}
        clone._desc = {n: set(s) for n, s in self._desc.items()}
        clone._pairs = self._pairs
        return clone

    def equals(self, other: ReachabilityIndex) -> bool:
        if isinstance(other, SetReachabilityIndex):
            mine = {(a, d) for d, ancs in self._anc.items() for a in ancs}
            theirs = {(a, d) for d, ancs in other._anc.items() for a in ancs}
            return mine == theirs
        return super().equals(other)

    def _desc_keys(self) -> set[int]:
        return set(self._desc)
