"""The NumPy bit-matrix reachability backend.

``M`` is stored as a dense ``uint64`` row matrix of shape
``cap × cap/64`` over the store's dense node ids: bit ``a`` of row ``d``
of the ancestor matrix means "``a`` is a proper ancestor of ``d``", and
the descendant mirror is the transpose kept materialized for O(row)
queries in both directions.  Capacity grows geometrically as the
interner hands out new ids; dropped rows are zeroed so id reuse after a
rollback (:meth:`~repro.views.store.ViewStore.release_ids`) is safe.

What the bitset backend does one Python big-int at a time, this backend
does as whole-matrix array reductions:

- ``recompute`` (Algorithm Reach) extracts the edge list once, strata
  nodes by topological level (one Kahn pass serves both directions:
  ancestor waves are keyed by the child's level, descendant waves by
  the negated parent's), and runs a stratified dynamic program
  (``_dp_plan`` / ``_apply_dp``): per stratum, edges are grouped by
  child and their parent rows ORed in — plain fancy ``|=`` for nodes
  with one or two in-edges, ``np.bitwise_or.reduceat`` for the rest —
  seeded reflexively so a node's row is ready the moment its level
  completes, with the self bits stripped at the end;
- the Δ(M,L)insert steps (``extend_ancestors``, ``add_cross_pairs``,
  ``add_anc_closure_pairs``) are broadcast ORs over row slices;
- the Δ(M,L)delete sweep (``retain_sweep``) classifies survivors and
  condemned in one ancestors-first pass, then rebuilds all surviving
  rows with the same level-grouped DP over the surviving edges and
  repacks the descendant mirror for the touched columns in one
  transpose step (``_clear_mirror``);
- ``copy`` is an array copy and ``diff`` a whole-matrix XOR that
  unpacks only the changed words (two-level ``nonzero``), which is
  what feeds closure pair-deltas to the subscription engine.

NumPy is an optional dependency (``pip install repro[fast]``); importing
this module without it raises ``ImportError``, which the registry in
:mod:`repro.index` converts into a typed, actionable error.
"""

from __future__ import annotations

from itertools import chain
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.index._bits import MaskView
from repro.index.base import ReachabilityIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.topo import TopoOrder
    from repro.views.store import ViewStore

_ONE = np.uint64(1)

if hasattr(np, "bitwise_count"):  # NumPy >= 2.0

    def _count_bits(arr: np.ndarray) -> int:
        """Total number of set bits in ``arr``."""
        return int(np.bitwise_count(arr).sum())

else:  # pragma: no cover - exercised only on NumPy 1.x
    _POP8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)

    def _count_bits(arr: np.ndarray) -> int:
        """Total number of set bits in ``arr`` (byte-table fallback)."""
        if arr.size == 0:
            return 0
        return int(_POP8[np.ascontiguousarray(arr).view(np.uint8)].sum())


def _le_bytes(arr: np.ndarray) -> np.ndarray:
    """``arr`` as a flat little-endian byte view (copy only if needed)."""
    return np.ascontiguousarray(arr).astype("<u8", copy=False).view(np.uint8)


def _bit_indices(row: np.ndarray) -> np.ndarray:
    """Ascending indices of the set bits of a 1-d word row."""
    return np.nonzero(np.unpackbits(_le_bytes(row), bitorder="little"))[0]


def _row_to_set(row: np.ndarray) -> set[int]:
    return set(_bit_indices(row).tolist())


def _row_to_int(row: np.ndarray) -> int:
    return int.from_bytes(_le_bytes(row).tobytes(), "little")


def _pad_row(row: np.ndarray, width: int) -> np.ndarray:
    """Zero-extend a 1-d word row to ``width`` words."""
    if row.shape[0] >= width:
        return row
    out = np.zeros(width, dtype=np.uint64)
    out[: row.shape[0]] = row
    return out


def _or_bits_into(row: np.ndarray, nodes: np.ndarray) -> None:
    """Set bit ``n`` of ``row`` for every ``n`` in ``nodes``.

    Uses ``np.bitwise_or.at`` because several nodes may share a word —
    a plain fancy ``|=`` would drop all but one of them.
    """
    np.bitwise_or.at(row, nodes >> 6, _ONE << (nodes & 63).astype(np.uint64))


def _levels(cap: int, par: np.ndarray, chd: np.ndarray) -> np.ndarray:
    """Longest-path level per node (Kahn waves on int arrays only)."""
    level = np.zeros(cap, dtype=np.int64)
    if len(par) == 0:
        return level
    order = np.argsort(par)
    chd_o = chd[order]
    out_ptr = np.searchsorted(par[order], np.arange(cap + 1))
    indeg = np.bincount(chd, minlength=cap)
    frontier = np.nonzero(indeg == 0)[0]
    waiting = indeg > 0
    depth = 0
    while frontier.size:
        level[frontier] = depth
        cnt = out_ptr[frontier + 1] - out_ptr[frontier]
        has = cnt > 0
        if not has.any():
            break
        nodes, fc = frontier[has], cnt[has]
        gather = (
            np.arange(int(fc.sum()))
            - np.repeat(np.cumsum(fc) - fc, fc)
            + np.repeat(out_ptr[nodes], fc)
        )
        indeg -= np.bincount(chd_o[gather], minlength=cap)
        frontier = np.nonzero(waiting & (indeg == 0))[0]
        waiting[frontier] = False
        depth += 1
    return level


def _self_bits(cap: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(ids, word index, bit mask) for the diagonal of a ``cap`` matrix."""
    ids = np.arange(cap, dtype=np.int64)
    return ids, ids >> 6, _ONE << (ids & 63).astype(np.uint64)


def _dp_plan(
    par: np.ndarray, chd: np.ndarray, strata: np.ndarray
) -> tuple[np.ndarray, np.ndarray, list[tuple[int, int, int]]]:
    """Partition DP edges into contiguous ``(start, end, slot)`` blocks.

    Edges are sorted by ``(stratum, parent-slot, child)`` where the
    stratum of an edge must be strictly greater than the stratum of
    every edge feeding its parent (longest-path levels qualify).  Slot
    is the parent's rank within the child's edge group clipped to 2:
    slots 0 and 1 hold at most one edge per child (a plain fancy ``|=``
    folds them — almost every node has ≤ 2 parents), slot 2 collects
    the high-degree rest for a per-child ``reduceat``.
    """
    # A child's edges all share one stratum (strata is a function of
    # the child in both closure directions), so grouping by child alone
    # groups by (stratum, child); composite integer keys replace the
    # multi-key lexsorts.
    order = np.argsort(chd)
    par_s, chd_s = par[order], chd[order]
    st_s = strata[order]
    gfirst = np.r_[True, chd_s[1:] != chd_s[:-1]]
    gstart = np.nonzero(gfirst)[0]
    gcount = np.diff(np.r_[gstart, len(chd_s)])
    rank = np.arange(len(chd_s)) - np.repeat(gstart, gcount)
    slot = np.minimum(rank, 2)
    span = int(chd_s.max()) + 1 if len(chd_s) else 1
    base = st_s - int(st_s.min()) if len(st_s) else st_s
    order2 = np.argsort((base * 3 + slot) * span + chd_s, kind="stable")
    pp, cc = par_s[order2], chd_s[order2]
    ss, sc = st_s[order2], slot[order2]
    bstart = np.nonzero(
        np.r_[True, (ss[1:] != ss[:-1]) | (sc[1:] != sc[:-1])]
    )[0]
    bend = np.r_[bstart[1:], len(cc)]
    blocks = list(zip(bstart.tolist(), bend.tolist(), sc[bstart].tolist()))
    return pp, cc, blocks


def _apply_dp(
    rows: np.ndarray,
    pp: np.ndarray,
    cc: np.ndarray,
    blocks: list[tuple[int, int, int]],
) -> None:
    """Run a ``_dp_plan`` over *reflexive* rows (``rows[c] |= rows[p]``)."""
    for s, e, slot in blocks:
        if slot < 2:
            rows[cc[s:e]] |= rows[pp[s:e]]
        else:
            gcc = cc[s:e]
            gs = np.nonzero(np.r_[True, gcc[1:] != gcc[:-1]])[0]
            red = np.bitwise_or.reduceat(rows[pp[s:e]], gs, axis=0)
            rows[gcc[gs]] |= red


def _closure(
    cap: int, width: int, par: np.ndarray, chd: np.ndarray, strata: np.ndarray
) -> np.ndarray:
    """Transitive-closure rows of a DAG given by edges ``par[i]→chd[i]``.

    Returns a ``cap × width`` matrix where row ``c`` has bit ``p`` set
    iff ``p`` properly reaches ``c``.  ``strata`` assigns each edge a
    processing stage (see :func:`_dp_plan`); the sweep works on
    *reflexive* rows (every row seeded with its own bit, stripped at
    the end) so a parent's row carries the parent bit for free.
    """
    rows = np.zeros((cap, width), dtype=np.uint64)
    if len(par) == 0:
        return rows
    pp, cc, blocks = _dp_plan(par, chd, strata)
    ids, words, bits = _self_bits(cap)
    rows[ids, words] = bits  # reflexive seed
    _apply_dp(rows, pp, cc, blocks)
    rows[ids, words] &= ~bits  # strip the reflexive seed
    return rows


class MatrixReachabilityIndex(ReachabilityIndex):
    """Reachability matrix as a dense NumPy ``uint64`` bit matrix."""

    backend = "matrix"
    native_masks = True

    __slots__ = ("_anc", "_desc", "_pairs")

    def __init__(self) -> None:
        self._anc = np.zeros((0, 0), dtype=np.uint64)
        self._desc = np.zeros((0, 0), dtype=np.uint64)
        self._pairs = 0

    # -- capacity -----------------------------------------------------------------

    @property
    def _cap(self) -> int:
        return self._anc.shape[0]

    def _ensure(self, upto: int) -> None:
        """Grow both matrices to hold node ids ``< upto``."""
        cap = self._anc.shape[0]
        if upto <= cap:
            return
        new_cap = max(64, cap * 2, -(-upto // 64) * 64)
        width = new_cap >> 6
        for name in ("_anc", "_desc"):
            old = getattr(self, name)
            grown = np.zeros((new_cap, width), dtype=np.uint64)
            if old.size:
                grown[: old.shape[0], : old.shape[1]] = old
            setattr(self, name, grown)

    # -- queries ------------------------------------------------------------------

    def anc(self, node: int) -> set[int]:
        """Proper ancestors of ``node`` (excludes the node itself)."""
        if node >= self._cap:
            return set()
        return _row_to_set(self._anc[node])

    def desc(self, node: int) -> set[int]:
        """Proper descendants of ``node`` (excludes the node itself)."""
        if node >= self._cap:
            return set()
        return _row_to_set(self._desc[node])

    def is_ancestor(self, a: int, d: int) -> bool:
        if a >= self._cap or d >= self._cap:
            return False
        return bool(int(self._anc[d, a >> 6]) >> (a & 63) & 1)

    def desc_view(self, node: int) -> MaskView:
        if node >= self._cap:
            return MaskView(0)
        return MaskView(_row_to_int(self._desc[node]))

    def __len__(self) -> int:
        return self._pairs

    def pairs(self) -> Iterator[tuple[int, int]]:
        if not self._anc.size:
            return
        for d in np.nonzero(self._anc.any(axis=1))[0].tolist():
            for a in _bit_indices(self._anc[d]).tolist():
                yield (a, d)

    def _rows_union(self, rows: np.ndarray, nodes: Iterable[int]) -> set[int]:
        cap = rows.shape[0]
        idx = np.fromiter((n for n in nodes if n < cap), dtype=np.int64)
        if idx.size == 0:
            return set()
        return _row_to_set(np.bitwise_or.reduce(rows[idx], axis=0))

    def anc_of_set(self, nodes: Iterable[int]) -> set[int]:
        return self._rows_union(self._anc, nodes)

    def desc_of_set(self, nodes: Iterable[int]) -> set[int]:
        return self._rows_union(self._desc, nodes)

    def desc_mask_of_set(self, nodes: Iterable[int]) -> MaskView:
        rows = self._desc
        cap = rows.shape[0]
        idx = np.fromiter((n for n in nodes if n < cap), dtype=np.int64)
        if idx.size == 0:
            return MaskView(0)
        return MaskView(_row_to_int(np.bitwise_or.reduce(rows[idx], axis=0)))

    # -- point mutation -----------------------------------------------------------

    def insert(self, anc: int, desc: int) -> bool:
        self._ensure(max(anc, desc) + 1)
        word, bit = anc >> 6, np.uint64(1 << (anc & 63))
        if int(self._anc[desc, word]) & int(bit):
            return False
        self._anc[desc, word] |= bit
        self._desc[anc, desc >> 6] |= np.uint64(1 << (desc & 63))
        self._pairs += 1
        return True

    def remove(self, anc: int, desc: int) -> bool:
        if max(anc, desc) >= self._cap:
            return False
        word, bit = anc >> 6, np.uint64(1 << (anc & 63))
        if not int(self._anc[desc, word]) & int(bit):
            return False
        self._anc[desc, word] &= ~bit
        self._desc[anc, desc >> 6] &= ~np.uint64(1 << (desc & 63))
        self._pairs -= 1
        return True

    def set_ancestors(self, node: int, ancestors: set[int]) -> None:
        top = max(ancestors, default=0)
        self._ensure(max(node, top) + 1)
        new = np.zeros(self._anc.shape[1], dtype=np.uint64)
        if ancestors:
            _or_bits_into(new, np.fromiter(ancestors, dtype=np.int64))
        old = self._anc[node].copy()
        added, removed = new & ~old, old & ~new
        word, bit = node >> 6, np.uint64(1 << (node & 63))
        if added.any():
            self._desc[_bit_indices(added), word] |= bit
        if removed.any():
            self._desc[_bit_indices(removed), word] &= ~bit
        self._pairs += _count_bits(added) - _count_bits(removed)
        self._anc[node] = new

    def drop_node(self, node: int) -> None:
        if node >= self._cap:
            return
        anc_row = self._anc[node].copy()
        desc_row = self._desc[node].copy()
        self._anc[node] = 0
        self._desc[node] = 0
        word, bit = node >> 6, np.uint64(1 << (node & 63))
        if anc_row.any():
            self._desc[_bit_indices(anc_row), word] &= ~bit
        if desc_row.any():
            self._anc[_bit_indices(desc_row), word] &= ~bit
        # A self-pair (node, node) sits in both rows: count it once.
        self_pair = int(anc_row[word]) >> (node & 63) & 1
        self._pairs -= _count_bits(anc_row) + _count_bits(desc_row) - self_pair

    def clear(self) -> None:
        self._anc.fill(0)
        self._desc.fill(0)
        self._pairs = 0

    # -- bulk operations ------------------------------------------------------------

    def recompute(self, store: "ViewStore", topo: "TopoOrder") -> None:
        n = max(store.nodes(), default=-1) + 1
        cap = max(64, -(-n // 64) * 64) if n else 0
        width = cap >> 6
        flat = np.array(
            list(
                chain.from_iterable(
                    chain.from_iterable(store.edges.values())
                )
            ),
            dtype=np.int64,
        )
        par, chd = flat[0::2], flat[1::2]
        if flat.size:
            # One longest-path level pass serves both closures: every
            # edge satisfies level[p] < level[c], so ascending child
            # level stratifies the ancestor DP and *descending* parent
            # level stratifies the mirror DP over the reversed edges.
            level = _levels(cap, par, chd)
            self._anc = _closure(cap, width, par, chd, level[chd])
            self._desc = _closure(cap, width, chd, par, -level[par])
        else:
            self._anc = np.zeros((cap, width), dtype=np.uint64)
            self._desc = np.zeros((cap, width), dtype=np.uint64)
        self._pairs = _count_bits(self._anc)

    def extend_ancestors(self, node: int, parents: Iterable[int]) -> int:
        par = np.fromiter(parents, dtype=np.int64)
        if par.size == 0:
            return 0
        self._ensure(max(node, int(par.max())) + 1)
        new = np.bitwise_or.reduce(self._anc[par], axis=0)
        _or_bits_into(new, par)
        added = new & ~self._anc[node]
        if not added.any():
            return 0
        count = _count_bits(added)
        self._anc[node] |= new
        self._desc[_bit_indices(added), node >> 6] |= np.uint64(
            1 << (node & 63)
        )
        self._pairs += count
        return count

    def add_cross_pairs(
        self, upper: Iterable[int], lower: Iterable[int]
    ) -> int:
        up = np.fromiter(upper, dtype=np.int64)
        if up.size == 0:
            return 0
        self._ensure(int(up.max()) + 1)
        upper_row = np.zeros(self._anc.shape[1], dtype=np.uint64)
        _or_bits_into(upper_row, up)
        return self._add_cross_row(upper_row, lower)

    def add_anc_closure_pairs(
        self, targets: Iterable[int], lower: Iterable[int]
    ) -> int:
        tgt = np.fromiter(targets, dtype=np.int64)
        if tgt.size == 0:
            return 0
        self._ensure(int(tgt.max()) + 1)
        upper_row = np.bitwise_or.reduce(self._anc[tgt], axis=0)
        _or_bits_into(upper_row, tgt)
        return self._add_cross_row(upper_row, lower)

    def _add_cross_row(
        self, upper_row: np.ndarray, lower: Iterable[int]
    ) -> int:
        low = np.unique(np.fromiter(lower, dtype=np.int64))
        if low.size == 0 or not upper_row.any():
            return 0
        self._ensure(int(low.max()) + 1)
        upper_row = _pad_row(upper_row, self._anc.shape[1])
        sub = self._anc[low]
        added = _count_bits(upper_row & ~sub)
        if not added:
            return 0
        self._anc[low] = sub | upper_row
        # The mirror OR is idempotent (bits already present were
        # mirror-consistent), so blanket-OR the lower bits into every
        # upper row of the descendant matrix.
        lower_row = np.zeros(self._anc.shape[1], dtype=np.uint64)
        _or_bits_into(lower_row, low)
        self._desc[_bit_indices(upper_row)] |= lower_row
        self._pairs += added
        return added

    def retain_ancestors(self, node: int, parents: Iterable[int]) -> int:
        if node >= self._cap:
            return 0
        old = self._anc[node].copy()
        if not old.any():
            return 0
        par = np.fromiter(parents, dtype=np.int64)
        if par.size:
            self._ensure(int(par.max()) + 1)
            old = _pad_row(old, self._anc.shape[1])
            keep = np.bitwise_or.reduce(self._anc[par], axis=0)
            _or_bits_into(keep, par)
        else:
            keep = np.zeros(old.shape[0], dtype=np.uint64)
        removed = old & ~keep
        count = _count_bits(removed)
        if not count:
            return 0
        self._anc[node] = old & keep
        self._desc[_bit_indices(removed), node >> 6] &= ~np.uint64(
            1 << (node & 63)
        )
        self._pairs -= count
        return count

    def retain_sweep(
        self, store: "ViewStore", lr: list[int], root_id: int | None
    ) -> tuple[int, list[int]]:
        k = len(lr)
        if k == 0:
            return 0, []
        self._ensure(max(lr) + 1)
        local = {node: i for i, node in enumerate(lr)}

        # One ancestors-first Python pass (``reversed(lr)`` puts every
        # in-region parent before its children) computes the paper's
        # ``keep`` flag, the condemned list, and the surviving edges
        # grouped by DP level — no fixpoint needed.
        alive = [False] * k
        lvl = [0] * k
        condemned: list[int] = []
        in_lv: list[int] = []  # surviving in-region edges, by child level
        in_p: list[int] = []
        in_c: list[int] = []
        out_p: list[int] = []  # out-region parent edges: global p, local c
        out_c: list[int] = []
        for node in reversed(lr):
            i = local[node]
            keep = node == root_id
            survivors: list[int] = []
            for p in store.parents_of(node):
                j = local.get(p)
                if j is None:  # out-region parents are never condemned
                    out_p.append(p)
                    out_c.append(i)
                    keep = True
                elif alive[j]:
                    survivors.append(j)
                    keep = True
            if not keep:
                condemned.append(node)
                continue
            alive[i] = True
            if survivors:
                depth = 1 + max(lvl[j] for j in survivors)
                lvl[i] = depth
                in_lv.extend([depth] * len(survivors))
                in_p.extend(survivors)
                in_c.extend([i] * len(survivors))

        # Level-grouped DP over the surviving edges, each edge exactly
        # once.  Work rows are *reflexive* (alive nodes carry their own
        # global bit) so a parent row contributes the parent pair for
        # free; surviving edges all predate the delete, which keeps
        # every contribution inside the old closure automatically — one
        # defensive clamp at the end is enough.
        region = np.fromiter(lr, dtype=np.int64, count=k)
        anc = self._anc
        old = anc[region]
        work = np.zeros_like(old)
        alive_idx = np.nonzero(np.array(alive, dtype=bool))[0]
        ga = region[alive_idx]
        work[alive_idx, ga >> 6] = _ONE << (ga & 63).astype(np.uint64)
        if out_p:
            op = np.array(out_p, dtype=np.int64)
            oc = np.array(out_c, dtype=np.int64)
            order = np.argsort(oc, kind="stable")
            op, oc = op[order], oc[order]
            starts = np.nonzero(np.r_[True, oc[1:] != oc[:-1]])[0]
            contrib = anc[op]
            contrib[np.arange(len(op)), op >> 6] |= _ONE << (
                op & 63
            ).astype(np.uint64)
            work[oc[starts]] |= np.bitwise_or.reduceat(
                contrib, starts, axis=0
            )
        if in_c:
            pp, cc, blocks = _dp_plan(
                np.array(in_p, dtype=np.int64),
                np.array(in_c, dtype=np.int64),
                np.array(in_lv, dtype=np.int64),
            )
            _apply_dp(work, pp, cc, blocks)
        work[alive_idx, ga >> 6] &= ~(_ONE << (ga & 63).astype(np.uint64))
        work &= old

        removed = old & ~work
        count = _count_bits(removed)
        if count:
            anc[region] = work
            self._clear_mirror(region, removed)
            self._pairs -= count
        return count, condemned

    def _clear_mirror(self, region: np.ndarray, removed: np.ndarray) -> None:
        """Clear bit ``d`` of ``desc[a]`` for every removed pair.

        ``removed`` is a ``len(region) × W`` slice of ancestor rows
        (row ``i`` ↔ descendant ``region[i]``, bit ``a`` ↔ ancestor).
        A per-pair scatter (``np.bitwise_and.at``) costs ~2µs/pair, so
        transpose instead: unpack to a boolean (region × ancestors)
        matrix, flip it, pack the region columns into clear-words per
        affected ancestor, and apply with one fancy 2-d AND (rows and
        columns are both unique, so the in-place op is safe).
        """
        flat = np.unpackbits(_le_bytes(removed), bitorder="little").reshape(
            len(region), -1
        )
        affected = np.nonzero(flat.any(axis=0))[0]
        wsort = np.argsort(region >> 6, kind="stable")
        rs = region[wsort]
        shifted = flat[:, affected].T[:, wsort].astype(np.uint64) << (
            rs & 63
        ).astype(np.uint64)
        words = rs >> 6
        wstarts = np.nonzero(np.r_[True, words[1:] != words[:-1]])[0]
        packed = np.bitwise_or.reduceat(shifted, wstarts, axis=1)
        self._desc[np.ix_(affected, words[wstarts])] &= ~packed

    # -- management -----------------------------------------------------------------

    def copy(self) -> "MatrixReachabilityIndex":
        clone = MatrixReachabilityIndex()
        clone._anc = self._anc.copy()
        clone._desc = self._desc.copy()
        clone._pairs = self._pairs
        return clone

    def equals(self, other: ReachabilityIndex) -> bool:
        if isinstance(other, MatrixReachabilityIndex):
            if self._pairs != other._pairs:
                return False
            a, b = self._anc, other._anc
            n = min(a.shape[0], b.shape[0])
            w = min(a.shape[1], b.shape[1])
            if not np.array_equal(a[:n, :w], b[:n, :w]):
                return False
            for mat in (a, b):
                if mat[n:].any() or mat[:, w:].any():
                    return False
            return True
        return super().equals(other)

    def diff(
        self, other: ReachabilityIndex
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        if not isinstance(other, MatrixReachabilityIndex):
            return super().diff(other)
        a, b = self._anc, other._anc
        n = max(a.shape[0], b.shape[0])
        w = max(a.shape[1], b.shape[1])
        if n == 0:
            return [], []

        def padded(mat: np.ndarray) -> np.ndarray:
            if mat.shape == (n, w):
                return mat
            out = np.zeros((n, w), dtype=np.uint64)
            out[: mat.shape[0], : mat.shape[1]] = mat
            return out

        pa, pb = padded(a), padded(b)
        changed = np.nonzero((pa != pb).any(axis=1))[0]
        if changed.size == 0:
            return [], []

        def extract(mat: np.ndarray) -> list[tuple[int, int]]:
            # Two-level nonzero: find the set *words* first (dense scan
            # over uint64), then unpack only those — orders of magnitude
            # less bool traffic than unpacking every changed row.
            wrow, wcol = np.nonzero(mat)
            if wrow.size == 0:
                return []
            flat = np.unpackbits(
                _le_bytes(mat[wrow, wcol]), bitorder="little"
            ).reshape(wrow.size, 64)
            widx, bit = np.nonzero(flat)
            anc = wcol[widx] * 64 + bit
            dsc = changed[wrow[widx]]
            order = np.lexsort((dsc, anc))
            return list(zip(anc[order].tolist(), dsc[order].tolist()))

        xor = pa[changed] ^ pb[changed]
        return extract(xor & pa[changed]), extract(xor & pb[changed])

    def _desc_keys(self) -> set[int]:
        if not self._desc.size:
            return set()
        return set(np.nonzero(self._desc.any(axis=1))[0].tolist())
