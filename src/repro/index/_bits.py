"""Bitmask helpers shared by the ``bitset`` and ``matrix`` backends.

Both fast backends speak the same bit language — bit ``k`` of a row
means "node ``k`` is in the row" — they just store the rows differently
(arbitrary-precision ``int`` vs. NumPy ``uint64`` words).  The helpers
that translate between bits and Python-level node sets live here so the
two backends cannot drift apart.
"""

from __future__ import annotations

from typing import Iterable, Iterator


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of ``mask``, ascending.

    Uses lowest-set-bit extraction (``mask & -mask``), which costs one
    big-int subtraction/AND per *set* bit instead of one shift per bit
    position.
    """
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_of(nodes: Iterable[int]) -> int:
    """Bitmask with bit ``n`` set for every node ``n`` in ``nodes``."""
    mask = 0
    for node in nodes:
        mask |= 1 << node
    return mask


class MaskView:
    """Read-only set-like membership view over a bitmask row."""

    __slots__ = ("_mask",)

    def __init__(self, mask: int):
        self._mask = mask

    def __contains__(self, node: int) -> bool:
        return bool(self._mask >> node & 1)

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self._mask)

    def __len__(self) -> int:
        return self._mask.bit_count()

    def with_nodes(self, nodes: Iterable[int]) -> "MaskView":
        """A new view that also contains every node in ``nodes``.

        The evaluator's region = ``start ∪ desc(start)`` union in one
        big-int OR, without touching the (immutable) receiver.
        """
        return MaskView(self._mask | mask_of(nodes))
