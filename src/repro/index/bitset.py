"""The integer-bitset reachability backend.

Node ids in a :class:`~repro.views.store.ViewStore` are dense integers
(the interner hands them out sequentially), so a row of ``M`` is an
arbitrary-precision Python ``int`` whose bit ``k`` means "node ``k`` is
in the row".  Row union is ``|``, membership is ``(mask >> k) & 1``,
cardinality is ``int.bit_count()`` — all executed word-at-a-time in C,
so the union-heavy hot loops (Algorithm Reach, the Δ(M,L) maintenance
steps, region queries) run ~64 pairs per machine operation instead of
one hash probe per pair.

``recompute`` avoids per-pair work entirely: the ancestor rows are one
backward DP sweep of mask unions, and the descendant mirror is the
symmetric *forward* sweep (``desc(v) = ⋃_child {c} ∪ desc(c)``) rather
than a transpose of the ancestor rows.

Set-returning accessors materialize a Python set from the mask (O(row)),
so point-query-heavy callers should prefer the bulk operations; the
incremental maintenance algorithms only pay materialization on the small
deltas they actually touch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from repro.index._bits import MaskView, iter_bits, mask_of
from repro.index.base import ReachabilityIndex

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.topo import TopoOrder
    from repro.views.store import ViewStore

# Shared with the matrix backend (see repro.index._bits); the old private
# names are kept for in-module readability.
_iter_bits = iter_bits
_mask_of = mask_of
_MaskView = MaskView


class BitsetReachabilityIndex(ReachabilityIndex):
    """Reachability matrix with one ``int`` bitmask per row."""

    backend = "bitset"
    native_masks = True

    __slots__ = ("_anc", "_desc", "_pairs")

    def __init__(self) -> None:
        self._anc: dict[int, int] = {}
        self._desc: dict[int, int] = {}
        self._pairs = 0

    # -- queries ------------------------------------------------------------------

    def anc(self, node: int) -> set[int]:
        """Proper ancestors of ``node`` (excludes the node itself)."""
        return set(_iter_bits(self._anc.get(node, 0)))

    def desc(self, node: int) -> set[int]:
        """Proper descendants of ``node`` (excludes the node itself)."""
        return set(_iter_bits(self._desc.get(node, 0)))

    def is_ancestor(self, a: int, d: int) -> bool:
        return bool(self._desc.get(a, 0) >> d & 1)

    def desc_view(self, node: int) -> _MaskView:
        return _MaskView(self._desc.get(node, 0))

    def __len__(self) -> int:
        return self._pairs

    def pairs(self) -> Iterator[tuple[int, int]]:
        for desc_node, mask in self._anc.items():
            for anc_node in _iter_bits(mask):
                yield (anc_node, desc_node)

    def anc_of_set(self, nodes: Iterable[int]) -> set[int]:
        rows = self._anc
        mask = 0
        for node in nodes:
            mask |= rows.get(node, 0)
        return set(_iter_bits(mask))

    def desc_of_set(self, nodes: Iterable[int]) -> set[int]:
        rows = self._desc
        mask = 0
        for node in nodes:
            mask |= rows.get(node, 0)
        return set(_iter_bits(mask))

    def desc_mask_of_set(self, nodes: Iterable[int]) -> _MaskView:
        rows = self._desc
        mask = 0
        for node in nodes:
            mask |= rows.get(node, 0)
        return _MaskView(mask)

    # -- point mutation -----------------------------------------------------------

    def insert(self, anc: int, desc: int) -> bool:
        bit = 1 << anc
        row = self._anc.get(desc, 0)
        if row & bit:
            return False
        self._anc[desc] = row | bit
        self._desc[anc] = self._desc.get(anc, 0) | (1 << desc)
        self._pairs += 1
        return True

    def remove(self, anc: int, desc: int) -> bool:
        bit = 1 << anc
        row = self._anc.get(desc, 0)
        if not row & bit:
            return False
        self._set_row(self._anc, desc, row ^ bit)
        self._set_row(self._desc, anc, self._desc.get(anc, 0) & ~(1 << desc))
        self._pairs -= 1
        return True

    def set_ancestors(self, node: int, ancestors: set[int]) -> None:
        new = _mask_of(ancestors)
        old = self._anc.get(node, 0)
        added = new & ~old
        removed = old & ~new
        if added or removed:
            mirror = self._desc
            bit = 1 << node
            for anc in _iter_bits(added):
                mirror[anc] = mirror.get(anc, 0) | bit
            for anc in _iter_bits(removed):
                self._set_row(mirror, anc, mirror.get(anc, 0) & ~bit)
            self._pairs += added.bit_count() - removed.bit_count()
        self._set_row(self._anc, node, new)

    def drop_node(self, node: int) -> None:
        bit = 1 << node
        anc_row = self._anc.pop(node, 0)
        for anc in _iter_bits(anc_row):
            self._set_row(self._desc, anc, self._desc.get(anc, 0) & ~bit)
        desc_row = self._desc.pop(node, 0)
        for desc in _iter_bits(desc_row):
            self._set_row(self._anc, desc, self._anc.get(desc, 0) & ~bit)
        self._pairs -= anc_row.bit_count() + desc_row.bit_count()

    def clear(self) -> None:
        self._anc.clear()
        self._desc.clear()
        self._pairs = 0

    @staticmethod
    def _set_row(rows: dict[int, int], node: int, mask: int) -> None:
        """Store a row, keeping the no-empty-rows invariant."""
        if mask:
            rows[node] = mask
        else:
            rows.pop(node, None)

    # -- bulk operations ------------------------------------------------------------

    def recompute(self, store: "ViewStore", topo: "TopoOrder") -> None:
        self.clear()
        anc: dict[int, int] = {}
        pairs = 0
        for node in topo.backward():  # ancestors first
            mask = 0
            for parent in store.parents_of(node):
                mask |= (1 << parent) | anc.get(parent, 0)
            if mask:
                anc[node] = mask
                pairs += mask.bit_count()
        # The mirror is the symmetric DP, not a transpose: children first.
        desc: dict[int, int] = {}
        for node in topo:
            mask = 0
            for child in store.children_of(node):
                mask |= (1 << child) | desc.get(child, 0)
            if mask:
                desc[node] = mask
        self._anc = anc
        self._desc = desc
        self._pairs = pairs

    def extend_ancestors(self, node: int, parents: Iterable[int]) -> int:
        rows = self._anc
        mask = 0
        for parent in parents:
            mask |= (1 << parent) | rows.get(parent, 0)
        old = rows.get(node, 0)
        added = mask & ~old
        if not added:
            return 0
        rows[node] = old | added
        mirror = self._desc
        get = mirror.get
        bit = 1 << node
        m = added
        while m:
            low = m & -m
            anc = low.bit_length() - 1
            mirror[anc] = get(anc, 0) | bit
            m ^= low
        count = added.bit_count()
        self._pairs += count
        return count

    def add_cross_pairs(
        self, upper: Iterable[int], lower: Iterable[int]
    ) -> int:
        return self._add_cross_mask(_mask_of(upper), lower)

    def add_anc_closure_pairs(
        self, targets: Iterable[int], lower: Iterable[int]
    ) -> int:
        rows = self._anc
        upper_mask = 0
        for target in targets:
            upper_mask |= (1 << target) | rows.get(target, 0)
        return self._add_cross_mask(upper_mask, lower)

    def _add_cross_mask(self, upper_mask: int, lower: Iterable[int]) -> int:
        if not upper_mask:
            return 0
        rows = self._anc
        added = 0
        lower_mask = 0
        for node in lower:
            lower_mask |= 1 << node
            old = rows.get(node, 0)
            new = upper_mask & ~old
            if new:
                rows[node] = old | new
                added += new.bit_count()
        if added:
            # The mirror OR is idempotent: bits already present were
            # mirror-consistent before, so blanket-ORing the lower mask
            # into every upper row lands exactly on the new state.
            mirror = self._desc
            for anc in _iter_bits(upper_mask):
                mirror[anc] = mirror.get(anc, 0) | lower_mask
            self._pairs += added
        return added

    def retain_ancestors(self, node: int, parents: Iterable[int]) -> int:
        rows = self._anc
        get = rows.get
        old = get(node, 0)
        if not old:
            return 0
        keep = 0
        for parent in parents:
            keep |= (1 << parent) | get(parent, 0)
        removed = old & ~keep
        if not removed:
            return 0
        self._set_row(rows, node, old & keep)
        mirror = self._desc
        mget = mirror.get
        clear = ~(1 << node)
        m = removed
        while m:
            low = m & -m
            anc = low.bit_length() - 1
            row = mget(anc, 0) & clear
            if row:
                mirror[anc] = row
            else:
                mirror.pop(anc, None)
            m ^= low
        count = removed.bit_count()
        self._pairs -= count
        return count

    # -- management -----------------------------------------------------------------

    def copy(self) -> "BitsetReachabilityIndex":
        clone = BitsetReachabilityIndex()
        clone._anc = dict(self._anc)  # int values are immutable
        clone._desc = dict(self._desc)
        clone._pairs = self._pairs
        return clone

    def equals(self, other: ReachabilityIndex) -> bool:
        if isinstance(other, BitsetReachabilityIndex):
            # Both sides keep the no-empty-rows invariant, so the dicts
            # are canonical.
            return self._anc == other._anc
        return super().equals(other)

    def diff(
        self, other: ReachabilityIndex
    ) -> tuple[list[tuple[int, int]], list[tuple[int, int]]]:
        if not isinstance(other, BitsetReachabilityIndex):
            return super().diff(other)
        added: list[tuple[int, int]] = []
        removed: list[tuple[int, int]] = []
        mine_rows = self._anc
        their_rows = other._anc
        for node in mine_rows.keys() | their_rows.keys():
            mine = mine_rows.get(node, 0)
            theirs = their_rows.get(node, 0)
            changed = mine ^ theirs
            if not changed:
                continue
            for anc in _iter_bits(changed & mine):
                added.append((anc, node))
            for anc in _iter_bits(changed & theirs):
                removed.append((anc, node))
        added.sort()
        removed.sort()
        return added, removed

    def _desc_keys(self) -> set[int]:
        return set(self._desc)
