"""SQL text generation for schemas and SPJ queries.

The engine is self-contained, but the paper positions the XML view as
"stored in relations" inside an RDBMS.  This module renders our schemas
and SPJ queries to standard SQL so the SQLite bridge
(:mod:`repro.relational.sqlite_backend`) can execute the same queries on
disk, and so users can inspect what a query means in familiar terms.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import QueryError
from repro.relational.conditions import (
    And,
    Col,
    Const,
    Not,
    Or,
    Param,
    Predicate,
    _Comparison,
)
from repro.relational.query import SPJQuery
from repro.relational.schema import AttrType, RelationSchema

_SQL_TYPES = {
    AttrType.INT: "INTEGER",
    AttrType.STR: "TEXT",
    AttrType.BOOL: "INTEGER",  # SQLite has no BOOLEAN; 0/1 convention
    AttrType.FLOAT: "REAL",
}


def create_table_sql(schema: RelationSchema) -> str:
    """``CREATE TABLE`` statement for a relation schema."""
    cols = ",\n  ".join(
        f"{attr.name} {_SQL_TYPES[attr.type]} NOT NULL" for attr in schema.attributes
    )
    key = ", ".join(schema.key)
    return (
        f"CREATE TABLE {schema.name} (\n  {cols},\n  PRIMARY KEY ({key})\n)"
    )


def insert_sql(schema: RelationSchema) -> str:
    """Parameterized ``INSERT`` statement for a relation schema."""
    cols = ", ".join(schema.attribute_names)
    marks = ", ".join("?" for _ in schema.attributes)
    return f"INSERT INTO {schema.name} ({cols}) VALUES ({marks})"


def _literal(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise QueryError(f"cannot render SQL literal for {value!r}")


def _term_sql(term, bindings: Mapping[str, object] | None) -> str:
    if isinstance(term, Col):
        return f"{term.alias}.{term.attr}"
    if isinstance(term, Const):
        return _literal(term.value)
    if isinstance(term, Param):
        if bindings is None or term.name not in bindings:
            raise QueryError(f"unbound parameter {term.name!r} in SQL generation")
        return _literal(bindings[term.name])
    raise QueryError(f"unknown term {term!r}")


def predicate_sql(pred: Predicate, bindings: Mapping[str, object] | None = None) -> str:
    """Render a predicate as a SQL boolean expression."""
    if isinstance(pred, _Comparison):
        return (
            f"{_term_sql(pred.left, bindings)} {pred.symbol} "
            f"{_term_sql(pred.right, bindings)}"
        )
    if isinstance(pred, And):
        if not pred.parts:
            return "1=1"
        return " AND ".join(f"({predicate_sql(p, bindings)})" for p in pred.parts)
    if isinstance(pred, Or):
        return " OR ".join(f"({predicate_sql(p, bindings)})" for p in pred.parts)
    if isinstance(pred, Not):
        return f"NOT ({predicate_sql(pred.part, bindings)})"
    raise QueryError(f"cannot render predicate {pred!r}")


def select_sql(query: SPJQuery, bindings: Mapping[str, object] | None = None) -> str:
    """Render an SPJ query as a ``SELECT DISTINCT`` statement."""
    cols = ", ".join(
        f"{col.alias}.{col.attr} AS {name}" for name, col in query.project
    )
    tables = ", ".join(f"{rel} AS {alias}" for rel, alias in query.tables)
    where = predicate_sql(query.where, bindings)
    return f"SELECT DISTINCT {cols} FROM {tables} WHERE {where}"
