"""Keyed tables, secondary indexes and the database container.

A :class:`Table` stores rows keyed by their primary key and enforces the
key constraint on insertion — the paper's insertion translation relies on
this ("a unique tuple ... needs to be inserted into the base relation R for
each i due to the key constraint on R", proof of Theorem 2).  Secondary
hash indexes accelerate the point lookups performed by the SPJ evaluator
and the view-update translators.

A :class:`Database` is a named collection of tables plus the
:class:`RelationalDelta` machinery for applying/undoing group updates
``ΔR``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Literal, Sequence

from repro.errors import KeyConstraintError, SchemaError, UnknownRelationError
from repro.relational.schema import RelationSchema


class Table:
    """One relation instance: keyed rows plus secondary hash indexes."""

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        self._rows: dict[tuple, tuple] = {}
        # index attrs -> value-tuple -> set of primary keys
        self._indexes: dict[tuple[str, ...], dict[tuple, set[tuple]]] = {}

    # -- size / membership ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: tuple) -> bool:
        key = self.schema.key_of(row)
        return self._rows.get(key) == row

    def has_key(self, key: tuple) -> bool:
        return key in self._rows

    def get(self, key: tuple) -> tuple | None:
        """Row with primary key ``key``, or ``None``."""
        return self._rows.get(key)

    def rows(self) -> Iterator[tuple]:
        """All rows, in insertion order (deterministic)."""
        return iter(self._rows.values())

    def keys(self) -> Iterator[tuple]:
        return iter(self._rows.keys())

    # -- mutation ---------------------------------------------------------------

    def insert(self, row: tuple) -> tuple:
        """Insert a row; raise :class:`KeyConstraintError` on duplicate key."""
        row = self.schema.validate_row(tuple(row))
        key = self.schema.key_of(row)
        if key in self._rows:
            raise KeyConstraintError(
                f"duplicate key {key} in relation {self.schema.name!r}"
            )
        self._rows[key] = row
        for attrs, index in self._indexes.items():
            index.setdefault(self.schema.project(row, attrs), set()).add(key)
        return row

    def delete_by_key(self, key: tuple) -> tuple:
        """Delete and return the row with the given primary key."""
        key = tuple(key)
        try:
            row = self._rows.pop(key)
        except KeyError:
            raise KeyConstraintError(
                f"no row with key {key} in relation {self.schema.name!r}"
            ) from None
        for attrs, index in self._indexes.items():
            value = self.schema.project(row, attrs)
            bucket = index.get(value)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del index[value]
        return row

    def delete(self, row: tuple) -> tuple:
        """Delete a full row (must match the stored row exactly)."""
        key = self.schema.key_of(tuple(row))
        stored = self._rows.get(key)
        if stored != tuple(row):
            raise KeyConstraintError(
                f"row {row!r} not present in relation {self.schema.name!r}"
            )
        return self.delete_by_key(key)

    # -- secondary indexes --------------------------------------------------------

    def create_index(self, attrs: Sequence[str]) -> None:
        """Create (or no-op if present) a hash index on ``attrs``."""
        attrs = tuple(attrs)
        for attr in attrs:
            self.schema.index_of(attr)  # validates
        if attrs in self._indexes:
            return
        index: dict[tuple, set[tuple]] = {}
        for key, row in self._rows.items():
            index.setdefault(self.schema.project(row, attrs), set()).add(key)
        self._indexes[attrs] = index

    def has_index(self, attrs: Sequence[str]) -> bool:
        return tuple(attrs) in self._indexes

    def lookup(self, attrs: Sequence[str], values: tuple) -> list[tuple]:
        """Rows whose ``attrs`` projection equals ``values``.

        Uses a secondary index when one exists, otherwise scans.
        """
        attrs = tuple(attrs)
        index = self._indexes.get(attrs)
        if index is not None:
            keys = index.get(tuple(values), ())
            return [self._rows[k] for k in keys]
        return [
            row
            for row in self._rows.values()
            if self.schema.project(row, attrs) == tuple(values)
        ]

    def copy(self) -> "Table":
        """Deep-enough copy (rows are immutable tuples)."""
        clone = Table(self.schema)
        clone._rows = dict(self._rows)
        for attrs in self._indexes:
            clone.create_index(attrs)
        return clone


# ---------------------------------------------------------------------------
# Group updates (ΔR)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeltaOp:
    """One base-table operation inside a group update ``ΔR``."""

    kind: Literal["insert", "delete"]
    relation: str
    row: tuple

    def inverted(self) -> "DeltaOp":
        other = "delete" if self.kind == "insert" else "insert"
        return DeltaOp(other, self.relation, self.row)


class RelationalDelta:
    """A group update ``ΔR``: an ordered list of tuple insert/delete ops."""

    def __init__(self, ops: Iterable[DeltaOp] = ()):
        self.ops: list[DeltaOp] = list(ops)

    def insert(self, relation: str, row: tuple) -> None:
        self.ops.append(DeltaOp("insert", relation, tuple(row)))

    def delete(self, relation: str, row: tuple) -> None:
        self.ops.append(DeltaOp("delete", relation, tuple(row)))

    def extend(self, other: "RelationalDelta") -> None:
        self.ops.extend(other.ops)

    def inverted(self) -> "RelationalDelta":
        """The delta undoing this one (ops reversed and inverted)."""
        return RelationalDelta(op.inverted() for op in reversed(self.ops))

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[DeltaOp]:
        return iter(self.ops)

    def __bool__(self) -> bool:
        return bool(self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RelationalDelta({self.ops!r})"


class Database:
    """A named collection of :class:`Table` instances."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: dict[str, Table] = {}

    # -- schema management ------------------------------------------------------

    def create_table(self, schema: RelationSchema) -> Table:
        if schema.name in self._tables:
            raise SchemaError(f"relation {schema.name!r} already exists")
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownRelationError(f"no relation named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        return list(self._tables)

    def schema(self, name: str) -> RelationSchema:
        return self.table(name).schema

    # -- convenience row operations ----------------------------------------------

    def insert(self, relation: str, row: tuple) -> tuple:
        return self.table(relation).insert(row)

    def insert_all(self, relation: str, rows: Iterable[tuple]) -> None:
        table = self.table(relation)
        for row in rows:
            table.insert(row)

    def delete(self, relation: str, row: tuple) -> tuple:
        return self.table(relation).delete(row)

    def rows(self, relation: str) -> list[tuple]:
        return list(self.table(relation).rows())

    def size(self) -> int:
        """Total number of rows across all tables."""
        return sum(len(t) for t in self._tables.values())

    # -- group updates -------------------------------------------------------------

    def apply(self, delta: RelationalDelta) -> None:
        """Apply ``ΔR`` atomically: on failure, completed ops are undone."""
        done: list[DeltaOp] = []
        try:
            for op in delta:
                if op.kind == "insert":
                    self.table(op.relation).insert(op.row)
                else:
                    self.table(op.relation).delete(op.row)
                done.append(op)
        except Exception:
            for op in reversed(done):
                inv = op.inverted()
                if inv.kind == "insert":
                    self.table(inv.relation).insert(inv.row)
                else:
                    self.table(inv.relation).delete(inv.row)
            raise

    def copy(self) -> "Database":
        clone = Database(self.name)
        clone._tables = {name: table.copy() for name, table in self._tables.items()}
        return clone

    # -- durable state (WAL checkpoints) -------------------------------------------

    def export_state(self) -> dict:
        """The complete row state, JSON-safe (schemas are code, not data).

        Rows travel as lists in table insertion order, so replaying the
        same ΔR stream against a database restored via
        :meth:`load_state` reproduces the original byte-for-byte —
        iteration order included.  The inverse of :meth:`load_state`.
        """
        return {
            "name": self.name,
            "tables": {
                name: [list(row) for row in table.rows()]
                for name, table in self._tables.items()
            },
        }

    def load_state(self, state: dict) -> None:
        """Replace every table's rows with :meth:`export_state` output.

        The schemas (and secondary indexes) of the *existing* tables are
        kept — like a replica's ATG, the schema is constructed by code
        and only the data is restored.  A state naming a relation this
        database does not define raises
        :class:`~repro.errors.SchemaError`; rows are validated against
        each table's schema as they are inserted.
        """
        tables = state.get("tables")
        if not isinstance(tables, dict):
            raise SchemaError(
                f"database state must carry a 'tables' object, "
                f"got {tables!r}"
            )
        unknown = sorted(set(tables) - set(self._tables))
        if unknown:
            raise SchemaError(
                f"database state names unknown relation(s): {unknown}"
            )
        for name, table in self._tables.items():
            rows = tables.get(name, [])
            table._rows.clear()
            for index in table._indexes.values():
                index.clear()
            for row in rows:
                table.insert(tuple(row))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = ", ".join(f"{n}[{len(t)}]" for n, t in self._tables.items())
        return f"Database({self.name}: {parts})"
