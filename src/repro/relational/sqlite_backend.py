"""SQLite bridge: persist a :class:`Database` and run SPJ queries on disk.

The paper stores both the published database ``I`` and the view coding
``V`` in an RDBMS.  This module round-trips our in-memory engine through
``sqlite3`` (standard library) and can execute any :class:`SPJQuery` via
generated SQL, which tests use to cross-check the in-memory evaluator
against a real SQL engine.
"""

from __future__ import annotations

import sqlite3
from typing import Mapping

from repro.relational.database import Database
from repro.relational.query import SPJQuery
from repro.relational.schema import AttrType, RelationSchema
from repro.relational.sqlgen import create_table_sql, insert_sql, select_sql


def dump_to_sqlite(db: Database, path: str = ":memory:") -> sqlite3.Connection:
    """Write every table of ``db`` into a SQLite database; return the handle."""
    conn = sqlite3.connect(path)
    cursor = conn.cursor()
    for name in db.table_names():
        table = db.table(name)
        cursor.execute(create_table_sql(table.schema))
        stmt = insert_sql(table.schema)
        cursor.executemany(stmt, [_encode_row(table.schema, r) for r in table.rows()])
    conn.commit()
    return conn


def load_from_sqlite(
    conn: sqlite3.Connection, schemas: list[RelationSchema], name: str = "db"
) -> Database:
    """Read the given relations back out of SQLite into a fresh Database."""
    db = Database(name)
    cursor = conn.cursor()
    for schema in schemas:
        db.create_table(schema)
        cols = ", ".join(schema.attribute_names)
        cursor.execute(f"SELECT {cols} FROM {schema.name}")
        for raw in cursor.fetchall():
            db.insert(schema.name, _decode_row(schema, raw))
    return db


def run_query_sqlite(
    conn: sqlite3.Connection,
    query: SPJQuery,
    bindings: Mapping[str, object] | None = None,
    schemas: Mapping[str, RelationSchema] | None = None,
) -> set[tuple]:
    """Execute an SPJ query via generated SQL; return the distinct rows.

    When the source ``schemas`` are supplied, boolean output columns are
    decoded back from SQLite's 0/1 convention so results compare equal to
    the in-memory evaluator's.
    """
    cursor = conn.cursor()
    cursor.execute(select_sql(query, bindings))
    raw_rows = cursor.fetchall()
    bool_cols: set[int] = set()
    if schemas:
        alias_to_rel = {alias: rel for rel, alias in query.tables}
        for i, (_, col) in enumerate(query.project):
            schema = schemas.get(alias_to_rel[col.alias])
            if schema is not None and col.attr in schema:
                if schema.attribute(col.attr).type is AttrType.BOOL:
                    bool_cols.add(i)
    out = set()
    for raw in raw_rows:
        out.add(tuple(bool(v) if i in bool_cols else v for i, v in enumerate(raw)))
    return out


def _encode_row(schema: RelationSchema, row: tuple) -> tuple:
    return tuple(
        int(v) if schema.attributes[i].type is AttrType.BOOL else v
        for i, v in enumerate(row)
    )


def _decode_row(schema: RelationSchema, raw: tuple) -> tuple:
    return tuple(
        bool(v) if schema.attributes[i].type is AttrType.BOOL else v
        for i, v in enumerate(raw)
    )
