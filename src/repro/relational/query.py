"""Select-project-join (SPJ) queries and their evaluation.

The paper's relational layer is built entirely from SPJ queries: the ATG
rules that drive publishing, and the edge-view definitions ``Q_edge_A_B``
that the view-update translation reasons over (Sections 2.3 and 4).  This
module provides:

- :class:`SPJQuery` — a named query over a list of table occurrences
  (relation, alias), a selection predicate and a projection list;
- an evaluator with greedy equi-join planning (hash joins over the
  equality conjuncts, residual predicate afterwards);
- *provenance-tracking* evaluation: for every output row, the base row
  each alias contributed.  The deletable sources ``Sr(Q, t)`` of
  Algorithm delete (Fig. 9) are read directly off this provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import QueryError
from repro.relational.conditions import (
    And,
    Col,
    Const,
    Eq,
    Not,
    Or,
    Param,
    Predicate,
    TRUE,
    _Comparison,
)
from repro.relational.database import Database
from repro.relational.schema import RelationSchema

Assignment = dict[str, tuple]
"""A partial join result: alias → base row."""


@dataclass
class QueryResult:
    """Result of evaluating an :class:`SPJQuery`.

    Attributes
    ----------
    rows:
        Distinct output rows, in first-derivation order (set semantics).
    derivations:
        For each output row, every combination of base rows producing it:
        a list of alias → base-row mappings.
    """

    rows: list[tuple] = field(default_factory=list)
    derivations: dict[tuple, list[Assignment]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self.derivations


class SPJQuery:
    """A named SPJ query.

    Parameters
    ----------
    name:
        Query name (used in diagnostics and SQL generation).
    tables:
        Table occurrences as ``(relation_name, alias)`` pairs.  The same
        relation may occur several times under different aliases
        (renaming).
    project:
        Output columns as ``(output_name, Col)`` pairs.
    where:
        Selection predicate; defaults to ``TRUE``.
    """

    def __init__(
        self,
        name: str,
        tables: Sequence[tuple[str, str]],
        project: Sequence[tuple[str, Col]],
        where: Predicate = TRUE,
    ):
        if not tables:
            raise QueryError(f"query {name!r} must reference at least one table")
        aliases = [alias for _, alias in tables]
        if len(set(aliases)) != len(aliases):
            raise QueryError(f"duplicate aliases in query {name!r}")
        if not project:
            raise QueryError(f"query {name!r} must project at least one column")
        out_names = [n for n, _ in project]
        if len(set(out_names)) != len(out_names):
            raise QueryError(f"duplicate output column names in query {name!r}")

        self.name = name
        self.tables: tuple[tuple[str, str], ...] = tuple(tables)
        self.project: tuple[tuple[str, Col], ...] = tuple(project)
        self.where = where
        self._alias_to_relation = {alias: rel for rel, alias in tables}
        for _, col in self.project:
            if col.alias not in self._alias_to_relation:
                raise QueryError(
                    f"projection references unknown alias {col.alias!r} "
                    f"in query {name!r}"
                )

    # -- introspection ---------------------------------------------------------

    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(alias for _, alias in self.tables)

    def relation_of(self, alias: str) -> str:
        try:
            return self._alias_to_relation[alias]
        except KeyError:
            raise QueryError(f"unknown alias {alias!r} in query {self.name!r}") from None

    @property
    def output_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.project)

    def output_index(self, name: str) -> int:
        for i, (out_name, _) in enumerate(self.project):
            if out_name == name:
                return i
        raise QueryError(f"query {self.name!r} has no output column {name!r}")

    def params(self) -> set[str]:
        """Names of all :class:`Param` terms in the selection predicate."""
        names: set[str] = set()

        def walk(pred: Predicate) -> None:
            if isinstance(pred, _Comparison):
                for term in (pred.left, pred.right):
                    if isinstance(term, Param):
                        names.add(term.name)
            elif isinstance(pred, (And, Or)):
                for part in pred.parts:
                    walk(part)
            elif isinstance(pred, Not):
                walk(pred.part)

        walk(self.where)
        return names

    # -- evaluation ------------------------------------------------------------

    def evaluate(
        self,
        db: Database,
        bindings: Mapping[str, object] | None = None,
        *,
        with_derivations: bool = False,
    ) -> QueryResult:
        """Evaluate the query against ``db``.

        ``bindings`` supplies values for :class:`Param` terms.  When
        ``with_derivations`` is set the result carries, for every output
        row, each base-row combination that derives it.
        """
        where = self.where.bind(bindings or {}) if self.params() else self.where
        alias_filters, join_edges, residual, always_false = _classify(
            where, self.aliases
        )
        if always_false:
            return QueryResult()

        candidates = {
            alias: self._candidate_rows(db, alias, alias_filters.get(alias, []))
            for alias in self.aliases
        }

        assignments = _join(self, db, candidates, join_edges)

        result = QueryResult()
        for assignment in assignments:
            if residual and not all(
                _eval_pred(pred, assignment, self, db) for pred in residual
            ):
                continue
            out = tuple(
                _column_value(col, assignment, self, db) for _, col in self.project
            )
            if out not in result.derivations:
                result.rows.append(out)
                result.derivations[out] = []
            if with_derivations:
                result.derivations[out].append(dict(assignment))
        return result

    def _candidate_rows(
        self, db: Database, alias: str, filters: list[_Comparison]
    ) -> list[tuple]:
        table = db.table(self.relation_of(alias))
        schema = table.schema
        # Try an indexed point lookup on the eq-const attributes.
        eq_attrs: list[str] = []
        eq_values: list[object] = []
        rest: list[_Comparison] = []
        for pred in filters:
            col, const = _as_col_const(pred)
            if isinstance(pred, Eq) and col is not None:
                eq_attrs.append(col.attr)
                eq_values.append(const.value)
            else:
                rest.append(pred)
        if eq_attrs:
            order = sorted(range(len(eq_attrs)), key=lambda i: eq_attrs[i])
            attrs = tuple(eq_attrs[i] for i in order)
            values = tuple(eq_values[i] for i in order)
            if table.has_index(attrs) or len(attrs) == 1:
                rows = table.lookup(attrs, values)
            else:
                # Use any single-attribute index, filter the rest.
                hit = next(
                    (
                        i
                        for i, attr in enumerate(attrs)
                        if table.has_index((attr,))
                    ),
                    None,
                )
                if hit is not None:
                    rows = table.lookup((attrs[hit],), (values[hit],))
                    residual_idx = [
                        schema.index_of(a) for j, a in enumerate(attrs) if j != hit
                    ]
                    residual_val = [v for j, v in enumerate(values) if j != hit]
                    rows = [
                        row
                        for row in rows
                        if all(
                            row[idx] == val
                            for idx, val in zip(residual_idx, residual_val)
                        )
                    ]
                else:
                    rows = table.lookup(attrs, values)
        else:
            rows = list(table.rows())
        if rest:
            rows = [row for row in rows if _row_satisfies(rest, row, schema)]
        return rows


# ---------------------------------------------------------------------------
# Predicate classification and join planning
# ---------------------------------------------------------------------------


def _as_col_const(pred: _Comparison) -> tuple[Col | None, Const | None]:
    """Normalize a comparison to (Col, Const) when it has that shape."""
    if isinstance(pred.left, Col) and isinstance(pred.right, Const):
        return pred.left, pred.right
    if isinstance(pred.left, Const) and isinstance(pred.right, Col):
        if isinstance(pred, Eq):
            return pred.right, pred.left
    return None, None


def _classify(
    where: Predicate, aliases: Sequence[str]
) -> tuple[
    dict[str, list[_Comparison]],
    list[tuple[Col, Col]],
    list[Predicate],
    bool,
]:
    """Split a predicate into per-alias filters, equi-join edges, residual.

    The fourth component is True when a constant conjunct is false (the
    whole query is empty).
    """
    alias_filters: dict[str, list[_Comparison]] = {}
    join_edges: list[tuple[Col, Col]] = []
    residual: list[Predicate] = []
    always_false = False
    for conjunct in where.conjuncts():
        if isinstance(conjunct, _Comparison):
            left, right = conjunct.left, conjunct.right
            if isinstance(left, Param) or isinstance(right, Param):
                raise QueryError("unbound parameter at evaluation time")
            if isinstance(left, Col) and isinstance(right, Col):
                if left.alias == right.alias:
                    alias_filters.setdefault(left.alias, []).append(conjunct)
                elif isinstance(conjunct, Eq):
                    join_edges.append((left, right))
                else:
                    residual.append(conjunct)
                continue
            col, _ = _as_col_const(conjunct)
            if col is None and isinstance(left, Col):
                col = left
            if col is None and isinstance(right, Col):
                col = right
            if col is not None:
                alias_filters.setdefault(col.alias, []).append(conjunct)
            elif isinstance(left, Const) and isinstance(right, Const):
                if not conjunct.evaluate(left.value, right.value):
                    always_false = True
            continue
        residual.append(conjunct)
    return alias_filters, join_edges, residual, always_false


def _row_satisfies(
    preds: Sequence[_Comparison], row: tuple, schema: RelationSchema
) -> bool:
    for pred in preds:
        left = _term_on_row(pred.left, row, schema)
        right = _term_on_row(pred.right, row, schema)
        try:
            if not pred.evaluate(left, right):
                return False
        except TypeError:
            return False
    return True


def _term_on_row(term, row: tuple, schema: RelationSchema):
    if isinstance(term, Col):
        if term.attr not in schema:
            return _NEVER
        return row[schema.index_of(term.attr)]
    return term.value


_NEVER = object()


def _join(
    query: SPJQuery,
    db: Database,
    candidates: dict[str, list[tuple]],
    join_edges: list[tuple[Col, Col]],
) -> list[Assignment]:
    """Greedy hash-join over the equi-join edges.

    Starts from the smallest candidate set, repeatedly joins in the alias
    with the most join edges into the bound set (falling back to a
    cartesian product for disconnected aliases).
    """
    aliases = list(query.aliases)
    if not aliases:
        return []

    remaining = set(aliases)
    start = min(remaining, key=lambda a: (len(candidates[a]), aliases.index(a)))
    remaining.discard(start)
    assignments: list[Assignment] = [{start: row} for row in candidates[start]]
    bound = {start}

    while remaining:
        # Pick the alias with the most edges into the bound set.
        def edge_count(alias: str) -> int:
            return sum(
                1
                for l, r in join_edges
                if (l.alias == alias and r.alias in bound)
                or (r.alias == alias and l.alias in bound)
            )

        next_alias = max(
            remaining, key=lambda a: (edge_count(a), -len(candidates[a]))
        )
        edges = [
            (l, r) if r.alias == next_alias else (r, l)
            for l, r in join_edges
            if (l.alias == next_alias and r.alias in bound)
            or (r.alias == next_alias and l.alias in bound)
        ]
        # edges: list of (bound_col, new_col)
        schema = db.schema(query.relation_of(next_alias))
        new_rows = candidates[next_alias]
        if edges:
            new_idx = [schema.index_of(col.attr) for _, col in edges]
            hashed: dict[tuple, list[tuple]] = {}
            for row in new_rows:
                hashed.setdefault(tuple(row[i] for i in new_idx), []).append(row)
            out: list[Assignment] = []
            for assignment in assignments:
                probe = tuple(
                    _column_value(col, assignment, query, db) for col, _ in edges
                )
                for row in hashed.get(probe, ()):
                    extended = dict(assignment)
                    extended[next_alias] = row
                    out.append(extended)
            assignments = out
        else:
            assignments = [
                {**assignment, next_alias: row}
                for assignment in assignments
                for row in new_rows
            ]
        bound.add(next_alias)
        remaining.discard(next_alias)
        if not assignments:
            return []
    return assignments


def _column_value(
    col: Col, assignment: Assignment, query: SPJQuery, db: Database
) -> object:
    row = assignment[col.alias]
    schema = db.schema(query.relation_of(col.alias))
    return row[schema.index_of(col.attr)]


def _eval_pred(
    pred: Predicate, assignment: Assignment, query: SPJQuery, db: Database
) -> bool:
    if isinstance(pred, _Comparison):
        left = _term_value(pred.left, assignment, query, db)
        right = _term_value(pred.right, assignment, query, db)
        try:
            return pred.evaluate(left, right)
        except TypeError:
            return False
    if isinstance(pred, And):
        return all(_eval_pred(p, assignment, query, db) for p in pred.parts)
    if isinstance(pred, Or):
        return any(_eval_pred(p, assignment, query, db) for p in pred.parts)
    if isinstance(pred, Not):
        return not _eval_pred(pred.part, assignment, query, db)
    raise QueryError(f"cannot evaluate predicate {pred!r}")


def _term_value(term, assignment: Assignment, query: SPJQuery, db: Database):
    if isinstance(term, Col):
        return _column_value(term, assignment, query, db)
    if isinstance(term, Const):
        return term.value
    raise QueryError(f"unbound term {term!r} at evaluation time")
