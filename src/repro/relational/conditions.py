"""Terms and predicates for SPJ selection conditions.

The grammar mirrors what the paper's SPJ views need (Section 4):
conjunctions of (in)equalities between columns, constants and query
parameters, plus Boolean combinators used by XPath filters once they are
pushed into relational form.

Terms
-----
- :class:`Col` — an ``alias.attribute`` reference into one of the query's
  table occurrences.
- :class:`Const` — a literal value.
- :class:`Param` — a named query parameter, bound at evaluation time (ATG
  rules are parameterized by the parent's semantic attribute, e.g.
  ``Q_prereq_course($prereq)``).

Predicates
----------
:class:`Eq`, :class:`Ne`, :class:`Lt`, :class:`Le`, :class:`Gt`,
:class:`Ge` over two terms; :class:`And`, :class:`Or`, :class:`Not`;
:data:`TRUE` for the empty condition.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping

from repro.errors import QueryError

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Col:
    """Reference to a column of a table occurrence: ``alias.attr``."""

    alias: str
    attr: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.attr}"


@dataclass(frozen=True)
class Const:
    """A literal value."""

    value: object

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Param:
    """A named parameter, bound via ``bindings`` at evaluation time."""

    name: str

    def __str__(self) -> str:
        return f":{self.name}"


Term = Col | Const | Param


def resolve_term(term: Term, bindings: Mapping[str, object] | None) -> Term:
    """Replace a :class:`Param` by the :class:`Const` it is bound to."""
    if isinstance(term, Param):
        if bindings is None or term.name not in bindings:
            raise QueryError(f"unbound query parameter {term.name!r}")
        return Const(bindings[term.name])
    return term


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class Predicate:
    """Base class of all selection predicates."""

    def columns(self) -> Iterator[Col]:
        """Yield every column reference appearing in the predicate."""
        raise NotImplementedError

    def bind(self, bindings: Mapping[str, object]) -> "Predicate":
        """Return a copy with all :class:`Param` terms substituted."""
        raise NotImplementedError

    def conjuncts(self) -> Iterator["Predicate"]:
        """Flatten top-level conjunction into atomic conjuncts."""
        yield self


@dataclass(frozen=True)
class _Comparison(Predicate):
    left: Term
    right: Term

    op: Callable[[object, object], bool] = operator.eq
    symbol: str = "?"

    def columns(self) -> Iterator[Col]:
        for term in (self.left, self.right):
            if isinstance(term, Col):
                yield term

    def bind(self, bindings: Mapping[str, object]) -> "Predicate":
        return type(self)(
            resolve_term(self.left, bindings), resolve_term(self.right, bindings)
        )

    def evaluate(self, left_value: object, right_value: object) -> bool:
        return self.op(left_value, right_value)

    def __str__(self) -> str:
        return f"{self.left} {self.symbol} {self.right}"


@dataclass(frozen=True)
class Eq(_Comparison):
    op: Callable[[object, object], bool] = operator.eq
    symbol: str = "="


@dataclass(frozen=True)
class Ne(_Comparison):
    op: Callable[[object, object], bool] = operator.ne
    symbol: str = "<>"


@dataclass(frozen=True)
class Lt(_Comparison):
    op: Callable[[object, object], bool] = operator.lt
    symbol: str = "<"


@dataclass(frozen=True)
class Le(_Comparison):
    op: Callable[[object, object], bool] = operator.le
    symbol: str = "<="


@dataclass(frozen=True)
class Gt(_Comparison):
    op: Callable[[object, object], bool] = operator.gt
    symbol: str = ">"


@dataclass(frozen=True)
class Ge(_Comparison):
    op: Callable[[object, object], bool] = operator.ge
    symbol: str = ">="


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of predicates.  ``And()`` is the true predicate."""

    parts: tuple[Predicate, ...]

    def __init__(self, *parts: Predicate):
        object.__setattr__(self, "parts", tuple(parts))

    def columns(self) -> Iterator[Col]:
        for part in self.parts:
            yield from part.columns()

    def bind(self, bindings: Mapping[str, object]) -> "Predicate":
        return And(*(part.bind(bindings) for part in self.parts))

    def conjuncts(self) -> Iterator[Predicate]:
        for part in self.parts:
            yield from part.conjuncts()

    def __str__(self) -> str:
        if not self.parts:
            return "TRUE"
        return " AND ".join(f"({part})" for part in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of predicates."""

    parts: tuple[Predicate, ...]

    def __init__(self, *parts: Predicate):
        if not parts:
            raise QueryError("Or() requires at least one part")
        object.__setattr__(self, "parts", tuple(parts))

    def columns(self) -> Iterator[Col]:
        for part in self.parts:
            yield from part.columns()

    def bind(self, bindings: Mapping[str, object]) -> "Predicate":
        return Or(*(part.bind(bindings) for part in self.parts))

    def __str__(self) -> str:
        return " OR ".join(f"({part})" for part in self.parts)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    part: Predicate

    def columns(self) -> Iterator[Col]:
        yield from self.part.columns()

    def bind(self, bindings: Mapping[str, object]) -> "Predicate":
        return Not(self.part.bind(bindings))

    def __str__(self) -> str:
        return f"NOT ({self.part})"


TRUE: Predicate = And()
"""The always-true predicate (an empty conjunction)."""
