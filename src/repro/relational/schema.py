"""Relation schemas: typed attributes and primary keys.

A :class:`RelationSchema` describes one relation: its name, an ordered list
of typed attributes, and the subset of attributes forming the primary key.
Rows are plain Python tuples positionally aligned with the schema; the
schema provides the index arithmetic (attribute lookup, key extraction,
projection) so that the hot paths stay tuple-based.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import SchemaError


class AttrType(enum.Enum):
    """Column types supported by the engine.

    ``BOOL`` is singled out because the insertion translator (paper,
    Section 4.3) treats attributes with a *finite* domain specially: only
    finite-domain variables are encoded into the SAT instance.
    """

    INT = "int"
    STR = "str"
    BOOL = "bool"
    FLOAT = "float"

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]

    @property
    def is_finite(self) -> bool:
        """Whether the domain of this type is finite (drives SAT encoding)."""
        return self is AttrType.BOOL

    def domain(self) -> tuple[object, ...]:
        """All values of a finite domain; raises for infinite domains."""
        if self is AttrType.BOOL:
            return (False, True)
        raise SchemaError(f"type {self.value} has an infinite domain")


_PYTHON_TYPES = {
    AttrType.INT: int,
    AttrType.STR: str,
    AttrType.BOOL: bool,
    AttrType.FLOAT: float,
}


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    type: AttrType

    def accepts(self, value: object) -> bool:
        """Whether ``value`` is a member of this attribute's domain."""
        expected = self.type.python_type
        if self.type is AttrType.INT:
            # bool is a subclass of int in Python; reject it for INT columns.
            return isinstance(value, int) and not isinstance(value, bool)
        if self.type is AttrType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, expected)


class RelationSchema:
    """Schema of one relation: name, ordered attributes, primary key.

    Parameters
    ----------
    name:
        Relation name, unique within a :class:`~repro.relational.Database`.
    attributes:
        Ordered ``(name, type)`` pairs (or :class:`Attribute` objects).
    key:
        Names of the attributes forming the primary key.  Must be a
        non-empty subset of the attribute names.
    """

    def __init__(
        self,
        name: str,
        attributes: Sequence[tuple[str, AttrType] | Attribute],
        key: Sequence[str],
    ):
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs: list[Attribute] = []
        for item in attributes:
            attr = item if isinstance(item, Attribute) else Attribute(*item)
            attrs.append(attr)
        names = [attr.name for attr in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {name!r}")
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        key = tuple(key)
        if not key:
            raise SchemaError(f"relation {name!r} must declare a primary key")
        missing = [attr for attr in key if attr not in names]
        if missing:
            raise SchemaError(f"key attributes {missing} not in relation {name!r}")
        if len(set(key)) != len(key):
            raise SchemaError(f"duplicate key attributes in relation {name!r}")

        self.name = name
        self.attributes: tuple[Attribute, ...] = tuple(attrs)
        self.key: tuple[str, ...] = key
        self._index = {attr.name: i for i, attr in enumerate(attrs)}
        self.key_indexes: tuple[int, ...] = tuple(self._index[k] for k in key)

    # -- attribute arithmetic -------------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    def __contains__(self, attr_name: str) -> bool:
        return attr_name in self._index

    def index_of(self, attr_name: str) -> int:
        """Position of attribute ``attr_name`` in a row tuple."""
        try:
            return self._index[attr_name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attr_name!r}"
            ) from None

    def attribute(self, attr_name: str) -> Attribute:
        return self.attributes[self.index_of(attr_name)]

    # -- row helpers ----------------------------------------------------------

    def validate_row(self, row: tuple) -> tuple:
        """Check arity and per-column types; return the row unchanged."""
        if len(row) != self.arity:
            raise SchemaError(
                f"row arity {len(row)} != schema arity {self.arity} "
                f"for relation {self.name!r}"
            )
        for attr, value in zip(self.attributes, row):
            if not attr.accepts(value):
                raise SchemaError(
                    f"value {value!r} not valid for attribute "
                    f"{self.name}.{attr.name} of type {attr.type.value}"
                )
        return row

    def key_of(self, row: tuple) -> tuple:
        """Extract the primary-key sub-tuple of ``row``."""
        return tuple(row[i] for i in self.key_indexes)

    def project(self, row: tuple, attr_names: Iterable[str]) -> tuple:
        """Project ``row`` onto the given attributes, in the given order."""
        return tuple(row[self.index_of(a)] for a in attr_names)

    def row_from_dict(self, values: dict[str, object]) -> tuple:
        """Build a row tuple from an attribute-name → value mapping."""
        extra = set(values) - set(self.attribute_names)
        if extra:
            raise SchemaError(
                f"unknown attributes {sorted(extra)} for relation {self.name!r}"
            )
        missing = [a for a in self.attribute_names if a not in values]
        if missing:
            raise SchemaError(
                f"missing attributes {missing} for relation {self.name!r}"
            )
        return self.validate_row(tuple(values[a] for a in self.attribute_names))

    def as_dict(self, row: tuple) -> dict[str, object]:
        """Present a row tuple as an attribute-name → value mapping."""
        return dict(zip(self.attribute_names, row))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cols = ", ".join(f"{a.name}:{a.type.value}" for a in self.attributes)
        return f"RelationSchema({self.name}({cols}), key={self.key})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self.attributes == other.attributes
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.name, self.attributes, self.key))
