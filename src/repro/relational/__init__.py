"""In-memory relational engine substrate.

The paper assumes a relational DBMS that hosts both the published base
database ``I`` and the relational coding ``V`` of the DAG-compressed XML
view.  This package implements the part of such a DBMS the paper's
algorithms rely on:

- typed relation schemas with primary keys (:mod:`repro.relational.schema`),
- keyed tables with secondary indexes (:mod:`repro.relational.database`),
- select-project-join (SPJ) queries with equi-join planning, parameters and
  provenance-tracking evaluation (:mod:`repro.relational.query`),
- SQL text generation and a SQLite bridge for on-disk storage
  (:mod:`repro.relational.sqlgen`, :mod:`repro.relational.sqlite_backend`).
"""

from repro.relational.schema import AttrType, Attribute, RelationSchema
from repro.relational.conditions import (
    And,
    Col,
    Const,
    Eq,
    Ge,
    Gt,
    Le,
    Lt,
    Ne,
    Not,
    Or,
    Param,
    Predicate,
    TRUE,
)
from repro.relational.database import Database, Table, DeltaOp, RelationalDelta
from repro.relational.query import SPJQuery, QueryResult

__all__ = [
    "AttrType",
    "Attribute",
    "RelationSchema",
    "And",
    "Col",
    "Const",
    "Eq",
    "Ge",
    "Gt",
    "Le",
    "Lt",
    "Ne",
    "Not",
    "Or",
    "Param",
    "Predicate",
    "TRUE",
    "Database",
    "Table",
    "DeltaOp",
    "RelationalDelta",
    "SPJQuery",
    "QueryResult",
]
