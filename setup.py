"""Legacy setup shim: enables `pip install -e .` where the environment
lacks the `wheel` package needed for PEP 660 editable installs."""

from setuptools import setup

setup()
