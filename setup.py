"""Legacy setup shim for offline environments.

Package metadata lives in ``pyproject.toml``; normal installs should use
``pip install -e .``.  This shim keeps ``python setup.py develop``
working where the ``wheel`` package needed for PEP 660 editable installs
is unavailable (e.g. network-less containers).
"""

from setuptools import setup

setup()
