"""Fig. 11(a)–(c): deletion performance vs database size per class.

Paper shape: all phases scale linearly with |C|; total deletion time is
dominated by the XPath-evaluation phase; W1 (descendant axis) is the most
expensive class.
"""

import pytest

from conftest import OPS_PER_CLASS, SIZES, fresh_updater
from repro.bench.harness import PhaseAccumulator
from repro.workloads.queries import make_workload


def run_deletions(updater, dataset, cls):
    acc = PhaseAccumulator()
    for op in make_workload(dataset, "delete", cls, count=OPS_PER_CLASS):
        acc.add(updater.apply_op(op))
    return acc


@pytest.mark.parametrize("cls", ["W1", "W2", "W3"])
@pytest.mark.parametrize("n_c", SIZES)
def test_deletion_workload(benchmark, cls, n_c):
    def setup():
        return fresh_updater(n_c), {}

    def work(updater, dataset):
        return run_deletions(updater, dataset, cls)

    acc = benchmark.pedantic(work, setup=setup, rounds=2, iterations=1)
    assert acc.count == OPS_PER_CLASS
    assert acc.accepted > 0


def test_deletion_dominated_by_xpath():
    """Paper: 'deletion time is dominated by XPath evaluation'.

    Our Algorithm delete issues its point queries through the generic
    Python SPJ evaluator, which is relatively more expensive than the
    paper's compiled SQL, so the check allows translation to come close
    — but XPath must remain a major component (documented deviation,
    EXPERIMENTS.md Fig. 11(a)-(c)).
    """
    updater, dataset = fresh_updater(SIZES[-1])
    acc = PhaseAccumulator()
    for cls in ("W1", "W2", "W3"):
        for op in make_workload(dataset, "delete", cls, count=OPS_PER_CLASS):
            acc.add(updater.apply_op(op))
    assert acc.xpath > 0.5 * acc.translate


def test_deletion_scales_linearly():
    totals = {}
    for n_c in SIZES:
        updater, dataset = fresh_updater(n_c)
        acc = run_deletions(updater, dataset, "W2")
        totals[n_c] = acc.foreground
    factor = SIZES[-1] / SIZES[0]
    growth = totals[SIZES[-1]] / max(totals[SIZES[0]], 1e-9)
    # Sub-quadratic growth (linear with slack for constants).
    assert growth < factor ** 2, f"deletion grew {growth:.1f}x for {factor}x data"
