"""Fig. 11(g): runtime vs update selectivity (|r[[p]]| / |Ep(r)|) at fixed |C|.

Paper shape: Xinsert/Xdelete translation grows mildly with the number of
selected nodes; Algorithm delete's cost grows clearly with |Ep(r)| (more
database point queries); the insertion coding time stays roughly flat.
"""

import pytest

from conftest import fresh_updater
from repro.bench.experiments import fig11g_vary_selectivity
from repro.ops import InsertOp

N_C = 360
FANOUTS = (1, 2, 4)


@pytest.mark.parametrize("fanout", FANOUTS)
def test_insert_fanout(benchmark, fanout):
    from repro.bench.experiments import _existing_key, _keys_with_children

    def setup():
        updater, dataset = fresh_updater(N_C)
        keys = _keys_with_children(updater, dataset, fanout)[:fanout]
        filt = " or ".join(f"key={k}" for k in keys)
        child_key = _existing_key(dataset)
        row = dataset.db.table("C").get((child_key,))
        return (updater, f"//cnode[{filt}]/sub", (child_key, row[4])), {}

    def work(updater, path, sem):
        return updater.apply_op(InsertOp(path, "cnode", sem))

    outcome = benchmark.pedantic(work, setup=setup, rounds=2, iterations=1)
    assert outcome.accepted


def test_selectivity_series_shape():
    rows = fig11g_vary_selectivity(
        n_c=N_C, fanouts=(1, 2, 4, 8), print_report=False
    )
    inserts = [r for r in rows if r["kind"] == "insert"]
    assert [r["selected"] for r in inserts] == [1, 2, 4, 8]
    # XPath evaluation grows with the disjunctive filter size.
    assert inserts[-1]["xpath_s"] > inserts[0]["xpath_s"]
    deletes = [r for r in rows if r["kind"] == "delete"]
    assert max(r["selected"] for r in deletes) >= 4
