"""Ablation: reachability-index backends on the Fig. 11 workloads.

Compares the reference ``sets`` backend against the ``bitset`` and
NumPy ``matrix`` backends on (a) Algorithm Reach (``compute_reach``)
over the paper's largest Fig. 11 configuration and (b) the Δ(M,L)
maintenance phase across the W1–W3 deletion and insertion classes.

Two combined metrics are asserted and persisted, deliberately distinct:

- **capture off** (plain Δ(M,L) repairs): the bitset backend must be
  ≥3× faster than ``sets``.  At this scale (|C| = 3000, M rows span
  ~82 machine words) Python's bignum rows and NumPy rows are within a
  small factor of each other — per-repair regions are small, so NumPy
  per-call overhead eats the vectorization win.  Both ratios are
  recorded so the trade-off stays visible.
- **capture on** (``capture_closure_deltas=True``: every repair also
  snapshots M and extracts the exact closure pair-delta via the bulk
  ``diff`` primitive — the feed for the subscription engine's ``//``
  closure patches): the matrix backend must be ≥10× faster than
  ``sets``.  This is where the word-packed representation structurally
  wins: ``copy`` is a memcpy and ``diff`` a bulk XOR, while ``sets``
  must deep-copy and pairwise-compare every row per repair.

Also measures batched update sessions (one deferred maintenance pass
for N updates) against sequential per-update maintenance.

All timings land in ``BENCH_index.json`` via ``conftest.record_bench``.
"""

from __future__ import annotations

import time

import pytest
from conftest import OPS_PER_CLASS, SIZES, fresh_updater, record_bench

from repro.index import BACKENDS, build_index
from repro.relview.insert import reset_fresh_counter
from repro.workloads.queries import make_workload

#: The Fig. 11 |C| configurations (bench/experiments.py DEFAULT_SIZES);
#: the largest is big enough that M rows span many machine words.
FIG11_SIZES = (300, 1000, 3000)
LARGEST_FIG11_NC = FIG11_SIZES[-1]

ALL_BACKENDS = sorted(BACKENDS)


def _measure_backend(
    backend: str, capture: bool = False, n_c: int = LARGEST_FIG11_NC
) -> dict:
    """Build + maintenance timings for one backend on one Fig. 11 config.

    With ``capture`` every repair additionally extracts its closure
    pair-delta (snapshot + bulk ``diff``), i.e. the cost of feeding the
    subscription engine's ``//`` closure-patch path.
    """
    reset_fresh_counter()  # identical fresh constants per backend run
    updater, dataset = fresh_updater(
        n_c,
        index_backend=backend,
        capture_closure_deltas=capture,
    )
    store, topo = updater.store, updater.topo

    build_seconds = min(
        _timed(lambda: build_index(store, topo, backend)) for _ in range(3)
    )

    maintain_seconds = 0.0
    ops = accepted = 0
    for cls in ("W1", "W2", "W3"):
        for op in make_workload(dataset, "delete", cls, count=OPS_PER_CLASS):
            outcome = updater.apply_op(op)
            maintain_seconds += outcome.timings.get("maintain", 0.0)
            ops += 1
            accepted += outcome.accepted
        for op in make_workload(dataset, "insert", cls, count=3):
            outcome = updater.apply_op(op)
            maintain_seconds += outcome.timings.get("maintain", 0.0)
            ops += 1
            accepted += outcome.accepted
    return {
        "build": build_seconds,
        "maintain": maintain_seconds,
        "m_repair": updater.m_repair_seconds,
        "ops": ops,
        "accepted": accepted,
        "updater": updater,
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _check_lockstep(results: dict) -> None:
    """All backends saw the same workload and ended on the same M."""
    sets_res = results["sets"]
    assert sets_res["accepted"] > 0
    for backend in results:
        if backend == "sets":
            continue
        assert results[backend]["ops"] == sets_res["ops"]
        assert results[backend]["accepted"] == sets_res["accepted"]
        assert results[backend]["updater"].reach.equals(
            sets_res["updater"].reach
        )


@pytest.mark.perf
def test_bitset_speedup_on_largest_fig11_config():
    """Capture-off combined metric: plain build + Δ(M,L) repairs."""
    results = {b: _measure_backend(b) for b in ALL_BACKENDS}
    for backend, res in results.items():
        record_bench(
            "fig11_largest",
            backend,
            "compute_reach",
            res["build"],
            n_c=LARGEST_FIG11_NC,
        )
        record_bench(
            "fig11_largest",
            backend,
            "maintain",
            res["maintain"],
            n_c=LARGEST_FIG11_NC,
            ops=res["ops"],
        )
        record_bench(
            "fig11_largest",
            backend,
            "m_repair",
            res["m_repair"],
            n_c=LARGEST_FIG11_NC,
            ops=res["ops"],
        )
    _check_lockstep(results)

    sets_total = results["sets"]["build"] + results["sets"]["maintain"]
    for backend in ALL_BACKENDS:
        if backend == "sets":
            continue
        total = results[backend]["build"] + results[backend]["maintain"]
        record_bench(
            "fig11_largest",
            backend,
            "speedup_vs_sets",
            0.0,
            ratio=round(sets_total / total, 2),
        )

    bits_total = results["bitset"]["build"] + results["bitset"]["maintain"]
    ratio = sets_total / bits_total
    assert ratio >= 3.0, (
        f"bitset compute_reach+maintenance only {ratio:.2f}x faster "
        f"(sets {sets_total:.4f}s vs bitset {bits_total:.4f}s)"
    )


@pytest.mark.perf
def test_matrix_speedup_with_closure_deltas_on_largest_fig11_config():
    """Capture-on combined metric: build + Δ(M,L) repairs where every
    repair also extracts its exact closure pair-delta (snapshot ``copy``
    + bulk ``diff``), the feed for ``//`` subscription patches.  The
    word-packed NumPy matrix turns both into array primitives; ``sets``
    must deep-copy and pairwise-compare every row, so the gap here is
    structural, not constant-factor (measured ~50x; asserted ≥10x with
    ample noise margin).
    """
    pytest.importorskip("numpy")
    results = {
        b: _measure_backend(b, capture=True) for b in ALL_BACKENDS
    }
    for backend, res in results.items():
        record_bench(
            "fig11_largest_closure_capture",
            backend,
            "compute_reach",
            res["build"],
            n_c=LARGEST_FIG11_NC,
        )
        record_bench(
            "fig11_largest_closure_capture",
            backend,
            "maintain",
            res["maintain"],
            n_c=LARGEST_FIG11_NC,
            ops=res["ops"],
        )
    _check_lockstep(results)

    sets_total = results["sets"]["build"] + results["sets"]["maintain"]
    for backend in ALL_BACKENDS:
        if backend == "sets":
            continue
        total = results[backend]["build"] + results[backend]["maintain"]
        record_bench(
            "fig11_largest_closure_capture",
            backend,
            "speedup_vs_sets",
            0.0,
            ratio=round(sets_total / total, 2),
        )

    mat = results["matrix"]
    matrix_total = mat["build"] + mat["maintain"]
    ratio = sets_total / matrix_total
    assert ratio >= 10.0, (
        f"matrix combined compute+maintenance with closure-delta capture "
        f"only {ratio:.2f}x faster (sets {sets_total:.4f}s vs matrix "
        f"{matrix_total:.4f}s)"
    )


@pytest.mark.perf
def test_three_way_ablation_across_fig11_sizes():
    """Per-backend build + maintenance rows at every Fig. 11 size.

    No ratio assertions at the smaller sizes (constant factors dominate
    there); the rows exist so ``BENCH_index.json`` shows how the
    backends scale, not just who wins at the largest configuration.
    """
    for n_c in FIG11_SIZES:
        results = {b: _measure_backend(b, n_c=n_c) for b in ALL_BACKENDS}
        _check_lockstep(results)
        for backend, res in results.items():
            record_bench(
                "fig11_scaling",
                backend,
                f"compute_reach:{n_c}",
                res["build"],
                n_c=n_c,
            )
            record_bench(
                "fig11_scaling",
                backend,
                f"maintain:{n_c}",
                res["maintain"],
                n_c=n_c,
                ops=res["ops"],
            )


def test_backends_equal_on_benchmark_sizes():
    """Cheap guard at the pytest-benchmark sizes: same M either way."""
    for n_c in SIZES:
        updaters = {}
        for backend in ALL_BACKENDS:
            reset_fresh_counter()
            updater, dataset = fresh_updater(n_c, index_backend=backend)
            for op in make_workload(dataset, "delete", "W2", count=3):
                updater.apply_op(op)
            updaters[backend] = updater
        for backend in ALL_BACKENDS:
            if backend == "sets":
                continue
            assert updaters[backend].reach.equals(updaters["sets"].reach), (
                f"{backend} diverged from sets at n_c={n_c}"
            )


@pytest.mark.perf
def test_batch_session_amortizes_maintenance():
    """One deferred pass for N deletions: same state, fewer repairs."""
    n_c = SIZES[-1]
    ops = None

    reset_fresh_counter()
    sequential, dataset = fresh_updater(n_c)
    ops = [
        op
        for cls in ("W1", "W2", "W3")
        for op in make_workload(dataset, "delete", cls, count=OPS_PER_CLASS)
    ]
    seq_maintain = 0.0
    for op in ops:
        seq_maintain += sequential.apply_op(op).timings.get("maintain", 0.0)

    reset_fresh_counter()
    batched, _ = fresh_updater(n_c)
    runs_before = batched.maintenance_runs
    with batched.batch() as session:
        for op in ops:
            batched.apply_op(op)
    batch_maintain = session.report.seconds

    assert batched.maintenance_runs - runs_before == 1
    assert session.report.maintenance_passes == 1
    assert batched.reach.equals(sequential.reach)

    backend = batched.index_backend
    record_bench(
        "batch_sessions", backend, "sequential_maintain", seq_maintain,
        n_c=n_c, ops=len(ops),
    )
    record_bench(
        "batch_sessions", backend, "batched_maintain", batch_maintain,
        n_c=n_c, ops=len(ops), passes=1,
    )
    # The single pass must not cost more than the N sequential passes
    # (generous slack: the win is structural, the guard is anti-regression).
    assert batch_maintain <= seq_maintain * 1.25
