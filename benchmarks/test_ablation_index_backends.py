"""Ablation: reachability-index backends on the Fig. 11 workloads.

Compares the reference ``sets`` backend against the ``bitset`` backend
on (a) Algorithm Reach (``compute_reach``) over the paper's largest
Fig. 11 configuration and (b) the Δ(M,L) maintenance phase across the
W1–W3 deletion and insertion classes, then checks the tentpole claim:
``compute_reach`` + maintenance is at least 3× faster with bitmask rows.

Also measures batched update sessions (one deferred maintenance pass for
N updates) against sequential per-update maintenance.

All timings land in ``BENCH_index.json`` via ``conftest.record_bench``.
"""

from __future__ import annotations

import time

import pytest
from conftest import OPS_PER_CLASS, SIZES, fresh_updater, record_bench

from repro.index import BACKENDS, build_index
from repro.relview.insert import reset_fresh_counter
from repro.workloads.queries import make_workload

#: |C| of the largest Fig. 11 configuration (bench/experiments.py
#: DEFAULT_SIZES); big enough that M rows span many machine words.
LARGEST_FIG11_NC = 3000

ALL_BACKENDS = sorted(BACKENDS)


def _measure_backend(backend: str) -> dict:
    """Build + maintenance timings for one backend on the largest config."""
    reset_fresh_counter()  # identical fresh constants per backend run
    updater, dataset = fresh_updater(LARGEST_FIG11_NC, index_backend=backend)
    store, topo = updater.store, updater.topo

    build_seconds = min(
        _timed(lambda: build_index(store, topo, backend)) for _ in range(3)
    )

    maintain_seconds = 0.0
    ops = accepted = 0
    for cls in ("W1", "W2", "W3"):
        for op in make_workload(dataset, "delete", cls, count=OPS_PER_CLASS):
            outcome = updater.apply_op(op)
            maintain_seconds += outcome.timings.get("maintain", 0.0)
            ops += 1
            accepted += outcome.accepted
        for op in make_workload(dataset, "insert", cls, count=3):
            outcome = updater.apply_op(op)
            maintain_seconds += outcome.timings.get("maintain", 0.0)
            ops += 1
            accepted += outcome.accepted
    return {
        "build": build_seconds,
        "maintain": maintain_seconds,
        "ops": ops,
        "accepted": accepted,
        "updater": updater,
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.perf
def test_bitset_speedup_on_largest_fig11_config():
    results = {b: _measure_backend(b) for b in ALL_BACKENDS}
    for backend, res in results.items():
        record_bench(
            "fig11_largest",
            backend,
            "compute_reach",
            res["build"],
            n_c=LARGEST_FIG11_NC,
        )
        record_bench(
            "fig11_largest",
            backend,
            "maintain",
            res["maintain"],
            n_c=LARGEST_FIG11_NC,
            ops=res["ops"],
        )

    sets_res, bits_res = results["sets"], results["bitset"]
    # Identical workload behavior and identical final M across backends.
    assert sets_res["ops"] == bits_res["ops"]
    assert sets_res["accepted"] == bits_res["accepted"] > 0
    assert sets_res["updater"].reach.equals(bits_res["updater"].reach)

    sets_total = sets_res["build"] + sets_res["maintain"]
    bits_total = bits_res["build"] + bits_res["maintain"]
    ratio = sets_total / bits_total
    record_bench(
        "fig11_largest", "bitset", "speedup_vs_sets", 0.0, ratio=round(ratio, 2)
    )
    assert ratio >= 3.0, (
        f"bitset compute_reach+maintenance only {ratio:.2f}x faster "
        f"(sets {sets_total:.4f}s vs bitset {bits_total:.4f}s)"
    )


def test_backends_equal_on_benchmark_sizes():
    """Cheap guard at the pytest-benchmark sizes: same M either way."""
    for n_c in SIZES:
        updaters = {}
        for backend in ALL_BACKENDS:
            reset_fresh_counter()
            updater, dataset = fresh_updater(n_c, index_backend=backend)
            for op in make_workload(dataset, "delete", "W2", count=3):
                updater.apply_op(op)
            updaters[backend] = updater
        a, b = (updaters[n] for n in ALL_BACKENDS)
        assert a.reach.equals(b.reach)


@pytest.mark.perf
def test_batch_session_amortizes_maintenance():
    """One deferred pass for N deletions: same state, fewer repairs."""
    n_c = SIZES[-1]
    ops = None

    reset_fresh_counter()
    sequential, dataset = fresh_updater(n_c)
    ops = [
        op
        for cls in ("W1", "W2", "W3")
        for op in make_workload(dataset, "delete", cls, count=OPS_PER_CLASS)
    ]
    seq_maintain = 0.0
    for op in ops:
        seq_maintain += sequential.apply_op(op).timings.get("maintain", 0.0)

    reset_fresh_counter()
    batched, _ = fresh_updater(n_c)
    runs_before = batched.maintenance_runs
    with batched.batch() as session:
        for op in ops:
            batched.apply_op(op)
    batch_maintain = session.report.seconds

    assert batched.maintenance_runs - runs_before == 1
    assert session.report.maintenance_passes == 1
    assert batched.reach.equals(sequential.reach)

    backend = batched.index_backend
    record_bench(
        "batch_sessions", backend, "sequential_maintain", seq_maintain,
        n_c=n_c, ops=len(ops),
    )
    record_bench(
        "batch_sessions", backend, "batched_maintain", batch_maintain,
        n_c=n_c, ops=len(ops), passes=1,
    )
    # The single pass must not cost more than the N sequential passes
    # (generous slack: the win is structural, the guard is anti-regression).
    assert batch_maintain <= seq_maintain * 1.25
