"""Fig. 11(h): runtime vs inserted-subtree size |ST(A,t)| at |r[[p]]| = 1.

Paper shape: Xdelete is flat (fixed |Ep(r)|); Xinsert and the maintenance
algorithms scale linearly with the subtree size.
"""

import pytest

from conftest import fresh_updater
from repro.bench.experiments import fig11h_vary_subtree
from repro.ops import InsertOp

N_C = 360


def test_subtree_size_series_shape():
    rows = fig11h_vary_subtree(n_c=N_C, print_report=False)
    assert len(rows) >= 3
    sizes = [r["st_nodes"] for r in rows]
    assert sizes == sorted(sizes)
    # Maintenance cost grows with the subtree size (compare the two ends,
    # requiring a clear factor to be robust against timing noise).
    small, large = rows[0], rows[-1]
    assert large["st_nodes"] > 4 * small["st_nodes"]
    assert large["maintain_s"] > small["maintain_s"]


@pytest.mark.parametrize("layer_index", [0, -1])
def test_insert_subtree_extremes(benchmark, layer_index):
    """Benchmark inserting the smallest vs largest available subtree."""

    def setup():
        updater, dataset = fresh_updater(N_C)
        store = updater.store
        by_layer = {}
        for node in sorted(store.nodes()):
            if store.type_of(node) != "cnode":
                continue
            key = store.sem_of(node)[0]
            by_layer.setdefault(dataset.layer_of[key], []).append(key)
        layers = sorted(by_layer)
        layer = layers[1] if layer_index == 0 else layers[-1]
        key = by_layer[layer][0]
        row = dataset.db.table("C").get((key,))
        target = None
        for node in sorted(store.nodes()):
            if (
                store.type_of(node) == "sub"
                and dataset.layer_of[store.sem_of(node)[0]] == 0
            ):
                target = store.sem_of(node)[0]
                break
        return (updater, f"cnode[key={target}]/sub", (key, row[4])), {}

    def work(updater, path, sem):
        return updater.apply_op(InsertOp(path, "cnode", sem))

    benchmark.pedantic(work, setup=setup, rounds=2, iterations=1)
