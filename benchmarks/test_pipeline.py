"""Lock-hold benchmark for the staged commit pipeline (the PR claim).

A writer holding the service's write lock blocks every reader and every
other writer, so the cost that matters for concurrency is not commit
latency but **lock hold time** — and before the phase split, the
critical section contained everything: translation, ΔR application,
Δ(M,L) repair, the per-subscription dependency scan and changefeed
fan-out.  The staged pipeline keeps only plan → mutate → maintain under
the lock, replaces the per-subscription scan with one pattern-bucket
candidate pass plus the node-watch intersection, and publishes after
release.

Both modes run the identical op stream against identically built views
at 1 / 64 / 512 standing subscriptions; results and published events
must be byte-identical (``commit_pipeline=False`` is the measured
pre-refactor baseline, not a different engine).  The acceptance claim:
**≥ 3× lower lock hold time at 512 subscriptions**.  Timings land in
``BENCH_index.json`` via ``conftest.record_bench`` under the
``pipeline`` experiment.

Workload shape: one subscription anchored on the toggled enrollment
plus value-anchored standing queries on courses the op stream never
touches — the realistic regime where almost every subscription must
*skip* each commit, which is exactly the work the candidate pass takes
off the write lock.
"""

from __future__ import annotations

import os
import time

import pytest
from conftest import record_bench

from repro.ops import BaseUpdateOp
from repro.relview.insert import reset_fresh_counter
from repro.service import ViewConfig, open_view
from repro.workloads.registrar import build_registrar

#: Subscription counts the lock-hold curve is sampled at.
SUB_COUNTS = (1, 64, 512)
LARGEST = max(SUB_COUNTS)

#: Committed toggles per measurement (each op bumps one generation).
COMMITS = 24

#: The one standing query the op stream actually affects.
MATCHING = "course[cno=CS650]/takenBy/student"

#: Standing queries cycled to the requested count, value-anchored at
#: courses the op stream never touches: they must skip every commit.
SKIP_TEMPLATES = (
    "course[cno=CS240]/prereq/course",
    "course[cno=CS500]/prereq/course",
    "course[cno=CS240]/takenBy/student",
    "course[cno=CS500]/takenBy/student",
    "course[cno=CS240]/title",
    "course[cno=CS500]/title",
)

#: Toggle one enrollment tuple in the base database.  A base-relation
#: round trip keeps the mutate phase small relative to the
#: per-subscription scan the legacy mode performs under the lock.
DELETE = BaseUpdateOp(ops=(("delete", "enroll", ("S01", "CS650")),))
INSERT = BaseUpdateOp(ops=(("insert", "enroll", ("S01", "CS650")),))


def _build(n_subs: int, commit_pipeline: bool):
    reset_fresh_counter()
    atg, db = build_registrar()
    service = open_view(
        atg,
        db,
        config=ViewConfig(
            side_effects="propagate",
            strict=False,
            commit_pipeline=commit_pipeline,
        ),
    )
    subs = [service.subscribe(MATCHING)]
    subs += [
        service.subscribe(SKIP_TEMPLATES[i % len(SKIP_TEMPLATES)])
        for i in range(n_subs - 1)
    ]
    return service, subs


@pytest.fixture(scope="module", autouse=True)
def _warm_both_modes():
    # First-use costs (imports, code caches, registrar build paths)
    # otherwise land entirely on whichever mode runs first.
    for mode in (True, False):
        service, _ = _build(8, mode)
        service.changefeed()
        for i in range(10):
            service.apply(DELETE if i % 2 == 0 else INSERT)


def _run(n_subs: int, commit_pipeline: bool) -> dict:
    """One mode's full measurement: timings + observable outputs."""
    service, subs = _build(n_subs, commit_pipeline)
    feed = service.changefeed()
    staged_base = (
        service.pipeline.stats()["lock_hold_seconds"]
        if commit_pipeline
        else 0.0
    )
    latency = 0.0
    published = []
    for i in range(COMMITS):
        op = DELETE if i % 2 == 0 else INSERT
        start = time.perf_counter()
        service.apply(op)
        latency += time.perf_counter() - start
        # Drain outside the timed region so queue depth never feeds
        # back into either mode's measurement.
        published.extend(e.to_dict() for e in feed.events())
    if commit_pipeline:
        lock_hold = (
            service.pipeline.stats()["lock_hold_seconds"] - staged_base
        )
    else:
        # Legacy single-phase commit: the write lock is held for the
        # whole of apply(), so wall time *is* hold time.
        lock_hold = latency
    return {
        "lock_hold": lock_hold,
        "latency": latency,
        "published": published,
        "results": [(sub.path, sub.result(), sub.delta()) for sub in subs],
        "skips": service.subscriptions.stats()["skips"],
    }


def _measure(n_subs: int) -> tuple[dict, dict]:
    staged = _run(n_subs, commit_pipeline=True)
    legacy = _run(n_subs, commit_pipeline=False)
    # The refactor claim is about *where* work runs, never *what* it
    # produces: identical events and identical subscription state.
    assert staged["published"] == legacy["published"]
    assert staged["results"] == legacy["results"]
    assert staged["skips"] == legacy["skips"]
    return staged, legacy


@pytest.mark.parametrize("n_subs", SUB_COUNTS)
def test_pipeline_modes_agree_and_record(n_subs):
    staged, legacy = _measure(n_subs)
    experiment = f"pipeline:subs{n_subs}"
    extra = {"subscriptions": n_subs, "commits": COMMITS}
    record_bench(
        experiment, "auto", "legacy_lock_hold", legacy["lock_hold"], **extra
    )
    record_bench(
        experiment, "auto", "staged_lock_hold", staged["lock_hold"], **extra
    )
    record_bench(
        experiment, "auto", "legacy_commit_latency",
        legacy["latency"], **extra,
    )
    record_bench(
        experiment, "auto", "staged_commit_latency",
        staged["latency"], **extra,
    )
    # The stream must exercise the skip fast path, or the candidate
    # pass is not what is being measured.
    if n_subs > 1:
        assert staged["skips"] > 0


@pytest.mark.perf
def test_staged_lock_hold_3x_lower_at_512_subs():
    """Acceptance: ≥3× lower writer lock hold at 512 subscriptions."""
    # Best-of-3 per mode (the repo's standard noise estimator, see
    # test_coarse_fallback): scheduler hiccups only ever inflate a
    # timing, so the minimum is the least-noisy estimate of each
    # mode's true cost.
    staged_hold = float("inf")
    legacy_hold = float("inf")
    for _ in range(3):
        staged, legacy = _measure(LARGEST)
        staged_hold = min(staged_hold, staged["lock_hold"])
        legacy_hold = min(legacy_hold, legacy["lock_hold"])
    ratio = legacy_hold / max(staged_hold, 1e-9)
    record_bench(
        f"pipeline:subs{LARGEST}", "auto", "lock_hold_reduction",
        0.0, ratio=round(ratio, 2),
    )
    # The 3x bar is the paper-grade claim, enforced on calm machines
    # (REPRO_BENCH_STRICT=1, as CI's perf leg sets); the loose floor
    # still proves the staged pipeline wins without flaking on noisy
    # shared runners.
    floor = 3.0 if os.environ.get("REPRO_BENCH_STRICT") else 1.2
    assert ratio >= floor, (
        f"staged pipeline lock hold only {ratio:.2f}x lower than the "
        f"legacy critical section at {LARGEST} subscriptions "
        f"(best-of-3: legacy {legacy_hold:.4f}s vs "
        f"staged {staged_hold:.4f}s over {COMMITS} commits)"
    )
