"""Measuring the fine-vs-coarse crossover for subscription maintenance.

Per event the registry has two regimes:

- **fine** — scan every edge record against every subscription's
  per-step patterns (cost ∝ |edges| × |patterns|, rewarded with skips
  and suffix restarts);
- **coarse** — skip the scan and fully re-evaluate every subscription
  (cost independent of |edges|).

For small events fine wins by orders of magnitude (that is the whole
subscription story); past some edge-list size the scan alone costs more
than re-evaluating, so the registry degrades such events to coarse —
the ROADMAP's "cost-based fallback", ``SubscriptionRegistry.coarse_threshold``.

This benchmark measures both regimes against synthetic events of
growing size (worst-case non-matching edges: the scan never
short-circuits), records the measured crossover in ``BENCH_index.json``,
and sanity-checks that the shipped default
(:data:`repro.subscribe.engine.DEFAULT_COARSE_THRESHOLD`) is within an
order of magnitude of the measurement — thresholds should be measured,
not guessed, but they also should not flap per machine.
"""

from __future__ import annotations

import time

import pytest
from conftest import record_bench

from repro.service import ViewConfig, open_view
from repro.subscribe.delta import EdgeRecord, ViewEvent
from repro.subscribe.engine import DEFAULT_COARSE_THRESHOLD
from repro.workloads import make_query_set
from repro.workloads.synthetic import SyntheticConfig, build_synthetic

N_QUERIES = 16
SIZES = (4, 16, 64, 256, 1024)
REPEATS = 5


def _service():
    dataset = build_synthetic(SyntheticConfig(n_c=240, seed=7))
    service = open_view(
        dataset.atg,
        dataset.db,
        config=ViewConfig(side_effects="propagate", strict=False),
    )
    for query in make_query_set(dataset, count=N_QUERIES):
        service.subscribe(query)
    return service


def _event(service, n_edges: int) -> ViewEvent:
    """A fine event of ``n_edges`` worst-case (never-matching) edges.

    Unmatched edge types force the scan to visit every pattern of every
    subscription for every edge — exactly the regime the threshold
    guards against.  The generation matches the current version so the
    handled subscriptions stay consistent for the next measurement.
    """
    return ViewEvent(
        generation=service.updater._version,
        edges=[
            EdgeRecord("insert", "zz_parent", "zz_child", 0, i)
            for i in range(n_edges)
        ],
        reason="synthetic",
    )


def _measure_regime(service, n_edges: int, coarse: bool) -> float:
    registry = service.subscriptions
    registry.coarse_threshold = 0 if coarse else 10**9
    best = float("inf")
    for _ in range(REPEATS):
        event = _event(service, n_edges)
        start = time.perf_counter()
        registry.handle(event)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.perf
def test_crossover_measured_and_recorded():
    """Wall-clock regimes compared head to head (flaky on noisy shared
    runners, hence the perf marker; the measured records ship in
    ``BENCH_index.json``)."""
    service = _service()
    crossover = None
    for n_edges in SIZES:
        fine = _measure_regime(service, n_edges, coarse=False)
        coarse = _measure_regime(service, n_edges, coarse=True)
        record_bench(
            "coarse_fallback", "auto", f"fine_scan:{n_edges}", fine,
            queries=N_QUERIES,
        )
        record_bench(
            "coarse_fallback", "auto", f"coarse_reeval:{n_edges}", coarse,
            queries=N_QUERIES,
        )
        if crossover is None and fine > coarse:
            crossover = n_edges
    # Scanning a huge never-matching event must eventually lose to one
    # re-evaluation per subscription — otherwise the fallback is moot.
    assert crossover is not None, (
        f"fine scan never crossed coarse re-eval up to {SIZES[-1]} edges"
    )
    record_bench(
        "coarse_fallback", "auto", "crossover_edges", 0.0,
        crossover=crossover, default_threshold=DEFAULT_COARSE_THRESHOLD,
        queries=N_QUERIES,
    )
    # The shipped default sits within an order of magnitude of the
    # measured crossover (machine-dependent, so keep the band wide).
    assert crossover / 16 <= DEFAULT_COARSE_THRESHOLD <= crossover * 16, (
        f"DEFAULT_COARSE_THRESHOLD={DEFAULT_COARSE_THRESHOLD} is far from "
        f"the measured crossover {crossover}"
    )


def test_fallback_keeps_results_correct_at_scale():
    """A real bulk batch big enough to trip the default threshold still
    leaves every subscription equal to a fresh evaluation."""
    from repro.workloads import make_workload

    dataset = build_synthetic(SyntheticConfig(n_c=240, seed=11))
    service = open_view(
        dataset.atg,
        dataset.db,
        config=ViewConfig(
            side_effects="propagate", strict=False, coarse_event_threshold=8
        ),
    )
    subs = [service.subscribe(q) for q in make_query_set(dataset, count=8)]
    ops = make_workload(dataset, "delete", "W2", count=6)
    service.apply(ops)  # one batch: a wide coalesced flush event
    stats = service.subscriptions.stats()
    for sub in subs:
        assert sub.result() == tuple(
            sorted(service.xpath(sub.path).targets)
        )
    # The coalesced flush event exceeds the configured threshold, so the
    # fallback must actually have engaged — for every subscription.
    assert stats["coarse_fallbacks"] == len(subs), stats
