"""Table 1: incremental maintenance of L and M vs batch recomputation.

Paper shape: incremental maintenance beats recomputation, and the
advantage widens as |C| grows.
"""

import time

import pytest

from conftest import SIZES, fresh_updater
from repro.baselines.recompute import recompute_structures
from repro.workloads.queries import make_workload

OPS = 4


def incremental_maintenance_seconds(n_c: int, kind: str) -> float:
    updater, dataset = fresh_updater(n_c)
    total = 0.0
    for op in make_workload(dataset, kind, "W2", count=OPS):
        if kind == "insert":
            outcome = updater.apply_op(op)
        else:
            outcome = updater.apply_op(op)
        total += outcome.timings.get("maintain", 0.0)
    return total


@pytest.mark.parametrize("n_c", SIZES)
@pytest.mark.parametrize("kind", ["insert", "delete"])
def test_incremental_maintenance(benchmark, n_c, kind):
    def setup():
        updater, dataset = fresh_updater(n_c)
        ops = make_workload(dataset, kind, "W2", count=OPS)
        return (updater, ops), {}

    def work(updater, ops):
        for op in ops:
            if op.kind == "insert":
                updater.apply_op(op)
            else:
                updater.apply_op(op)

    benchmark.pedantic(work, setup=setup, rounds=2, iterations=1)


@pytest.mark.parametrize("n_c", SIZES)
def test_recomputation(benchmark, n_c):
    updater, _ = fresh_updater(n_c)
    timings = benchmark(recompute_structures, updater.store)
    assert timings.total_seconds > 0


def test_incremental_beats_recompute_at_scale():
    """The paper's Table-1 claim, at the largest benchmark size."""
    n_c = SIZES[-1]
    updater, dataset = fresh_updater(n_c)
    inc = incremental_maintenance_seconds(n_c, "delete")
    t0 = time.perf_counter()
    for _ in range(OPS):
        recompute_structures(updater.store)
    batch = time.perf_counter() - t0
    assert inc < batch, (
        f"incremental {inc:.4f}s should beat {OPS}x recompute {batch:.4f}s"
    )
