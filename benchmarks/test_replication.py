"""Replication costs: snapshot capture/save/load and changefeed folding.

Two questions an operator sizes a replica fleet with:

- **bootstrap cost** — how long does it take to capture, serialize and
  restore a snapshot of the full store, and how big is the artifact;
- **steady-state cost** — how fast does a replica fold events compared
  with the writer producing them (fold throughput must dominate, or a
  replica can never catch up).

Sizes are laptop-scale; correctness assertions (lossless round trip,
byte-identical convergence) always run, while the timing-*ratio*
assertion is ``perf``-marked like the rest of the suite.  Timings land
in ``BENCH_index.json`` via ``conftest.record_bench``.
"""

from __future__ import annotations

import gzip
import pickle
import time

import pytest
from conftest import SIZES, fresh_updater, record_bench

from repro.replica import InProcessTransport, ReplicaView, Snapshot
from repro.service import ViewConfig, open_view
from repro.workloads import make_workload

OPS_PER_KIND = 6
LARGEST = max(SIZES)


def _service(dataset):
    return open_view(
        dataset.atg,
        dataset.db,
        config=ViewConfig(side_effects="propagate", strict=False),
    )


def _op_stream(dataset):
    ops = []
    for cls in ("W1", "W2"):
        ops.extend(make_workload(dataset, "delete", cls, count=OPS_PER_KIND))
    ops.extend(make_workload(
        dataset, "insert", "W2", count=OPS_PER_KIND, new_key_fraction=0.0
    ))
    return ops


@pytest.mark.parametrize("n_c", SIZES)
def test_snapshot_round_trip_cost(n_c, tmp_path):
    _updater, dataset = fresh_updater(n_c)
    service = _service(dataset)
    path = tmp_path / "view.pkl.gz"

    start = time.perf_counter()
    snapshot = service.snapshot()
    capture = time.perf_counter() - start

    start = time.perf_counter()
    snapshot.save(path)
    save = time.perf_counter() - start

    start = time.perf_counter()
    loaded = Snapshot.load(path)
    load = time.perf_counter() - start

    start = time.perf_counter()
    store = loaded.restore_store(service.atg)
    restore = time.perf_counter() - start

    assert loaded == snapshot  # lossless
    assert store.export_state() == service.store.export_state()
    size = path.stat().st_size
    # The gzip layer must actually pay for itself on this payload.
    assert size < len(pickle.dumps(snapshot.to_dict()))
    assert gzip.decompress(path.read_bytes())

    for phase, seconds in (
        ("capture", capture), ("save", save),
        ("load", load), ("restore", restore),
    ):
        record_bench(
            "replication_snapshot", "service", phase, seconds,
            n_c=n_c, nodes=snapshot.num_nodes, edges=snapshot.num_edges,
            artifact_bytes=size,
        )


@pytest.mark.parametrize("n_c", SIZES)
def test_fold_throughput_tracks_writer(n_c):
    _updater, dataset = fresh_updater(n_c)
    service = _service(dataset)
    replica = ReplicaView(service.atg, InProcessTransport(service))
    replica.bootstrap()
    ops = _op_stream(dataset)

    start = time.perf_counter()
    applied = sum(1 for op in ops if service.apply(op).accepted)
    write = time.perf_counter() - start

    start = time.perf_counter()
    folded = replica.pump()
    fold = time.perf_counter() - start

    assert applied > 0 and folded > 0
    assert replica.export_state() == service.store.export_state()
    assert replica.digest() == service.store.digest()
    record_bench(
        "replication_fold", "service", "writer_apply", write,
        n_c=n_c, events=applied,
    )
    record_bench(
        "replication_fold", "service", "replica_fold", fold,
        n_c=n_c, events=folded,
    )


@pytest.mark.perf
def test_folding_outruns_the_writer():
    """Steady-state viability: a replica folds an event stream faster
    than the writer produced it (folding skips planning, SAT checks and
    index maintenance), so lag is transient rather than cumulative."""
    _updater, dataset = fresh_updater(LARGEST)
    service = _service(dataset)
    replica = ReplicaView(service.atg, InProcessTransport(service))
    replica.bootstrap()
    ops = _op_stream(dataset)

    start = time.perf_counter()
    for op in ops:
        service.apply(op)
    write = time.perf_counter() - start

    start = time.perf_counter()
    replica.pump()
    fold = time.perf_counter() - start

    assert replica.digest() == service.store.digest()
    assert fold < write, (
        f"replica fold ({fold:.4f}s) must beat writer apply ({write:.4f}s)"
    )
