"""Fig. 11(d)–(f): insertion performance vs database size per class.

Paper shape: linear scaling with |C|; the SAT coding cost is roughly
independent of the database size (it depends on |ΔV| and |Q| only); a
fraction of insertions is rejected (the paper reports 78% solver success).
"""

import pytest

from conftest import OPS_PER_CLASS, SIZES, fresh_updater
from repro.bench.harness import PhaseAccumulator
from repro.workloads.queries import make_workload


def run_insertions(updater, dataset, cls):
    acc = PhaseAccumulator()
    for op in make_workload(dataset, "insert", cls, count=OPS_PER_CLASS):
        acc.add(updater.apply_op(op))
    return acc


@pytest.mark.parametrize("cls", ["W1", "W2", "W3"])
@pytest.mark.parametrize("n_c", SIZES)
def test_insertion_workload(benchmark, cls, n_c):
    def setup():
        return fresh_updater(n_c), {}

    def work(updater, dataset):
        return run_insertions(updater, dataset, cls)

    acc = benchmark.pedantic(work, setup=setup, rounds=2, iterations=1)
    assert acc.count == OPS_PER_CLASS
    assert acc.accepted > 0


def test_insertions_mostly_accepted():
    """Acceptance rate in the ballpark of the paper's 78%."""
    accepted = total = 0
    updater, dataset = fresh_updater(SIZES[-1])
    for cls in ("W1", "W2", "W3"):
        for op in make_workload(dataset, "insert", cls, count=OPS_PER_CLASS):
            outcome = updater.apply_op(op)
            accepted += outcome.accepted
            total += 1
    assert accepted / total > 0.5
    assert updater.check_consistency() == []


def test_insertion_scales_linearly():
    totals = {}
    for n_c in SIZES:
        updater, dataset = fresh_updater(n_c)
        acc = run_insertions(updater, dataset, "W2")
        totals[n_c] = acc.foreground
    factor = SIZES[-1] / SIZES[0]
    growth = totals[SIZES[-1]] / max(totals[SIZES[0]], 1e-9)
    assert growth < factor ** 2
