"""Shared helpers for the benchmark suite.

Every benchmark mirrors one paper artifact (see DESIGN.md §3).  Sizes are
laptop-scale; the assertions check the *shape* of the results (linearity,
who wins, orderings), not absolute times.

Benchmarks that compare reachability-index backends additionally record
per-phase timings via :func:`record_bench`; at session end the records
are written to ``benchmarks/BENCH_index.json`` so later PRs have a
machine-readable perf trajectory to diff against.
"""

from __future__ import annotations

import json
import pathlib
import platform

import pytest

from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.workloads.synthetic import SyntheticConfig, build_synthetic

SIZES = (120, 360)
OPS_PER_CLASS = 5

BENCH_INDEX_PATH = pathlib.Path(__file__).with_name("BENCH_index.json")

#: Per-phase timing records accumulated by index-backend benchmarks.
BENCH_RECORDS: list[dict] = []


def record_bench(
    experiment: str, backend: str, phase: str, seconds: float, **extra
) -> None:
    """Record one (experiment, backend, phase) timing for BENCH_index.json."""
    BENCH_RECORDS.append(
        {
            "experiment": experiment,
            "backend": backend,
            "phase": phase,
            "seconds": round(seconds, 6),
            **extra,
        }
    )


def pytest_sessionfinish(session, exitstatus):
    if not BENCH_RECORDS or exitstatus != 0:
        return  # never let a failed/partial run clobber good data
    # Merge with the committed file so running a benchmark subset only
    # refreshes its own (experiment, backend, phase) records.
    merged: dict[tuple, dict] = {}
    if BENCH_INDEX_PATH.exists():
        try:
            previous = json.loads(BENCH_INDEX_PATH.read_text())
            for rec in previous.get("records", []):
                merged[(rec["experiment"], rec["backend"], rec["phase"])] = rec
        except (ValueError, KeyError):
            merged = {}
    for rec in BENCH_RECORDS:
        merged[(rec["experiment"], rec["backend"], rec["phase"])] = rec
    payload = {
        "schema": "repro-bench-index/1",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": sorted(merged.values(), key=lambda r: (
            r["experiment"], r["backend"], r["phase"],
        )),
    }
    BENCH_INDEX_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def fresh_updater(
    n_c: int,
    seed: int = 42,
    index_backend: str = "auto",
    capture_closure_deltas: "bool | str" = "auto",
):
    """A pristine dataset + updater (mutating benchmarks rebuild per round)."""
    dataset = build_synthetic(SyntheticConfig(n_c=n_c, seed=seed))
    updater = XMLViewUpdater(
        dataset.atg,
        dataset.db,
        side_effect_policy=SideEffectPolicy.PROPAGATE,
        strict=False,
        sat_solver="auto",
        index_backend=index_backend,
        capture_closure_deltas=capture_closure_deltas,
    )
    return updater, dataset


@pytest.fixture(scope="session")
def readonly_updaters():
    """Session-cached updaters for read-only benchmarks."""
    return {n: fresh_updater(n) for n in SIZES}
