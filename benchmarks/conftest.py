"""Shared helpers for the benchmark suite.

Every benchmark mirrors one paper artifact (see DESIGN.md §3).  Sizes are
laptop-scale; the assertions check the *shape* of the results (linearity,
who wins, orderings), not absolute times.
"""

from __future__ import annotations

import pytest

from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.workloads.synthetic import SyntheticConfig, build_synthetic

SIZES = (120, 360)
OPS_PER_CLASS = 5


def fresh_updater(n_c: int, seed: int = 42):
    """A pristine dataset + updater (mutating benchmarks rebuild per round)."""
    dataset = build_synthetic(SyntheticConfig(n_c=n_c, seed=seed))
    updater = XMLViewUpdater(
        dataset.atg,
        dataset.db,
        side_effect_policy=SideEffectPolicy.PROPAGATE,
        strict=False,
        sat_solver="auto",
    )
    return updater, dataset


@pytest.fixture(scope="session")
def readonly_updaters():
    """Session-cached updaters for read-only benchmarks."""
    return {n: fresh_updater(n) for n in SIZES}
