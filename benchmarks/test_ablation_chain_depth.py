"""Ablation A-4: sensitivity to recursion depth.

The paper's headline capability is *recursive* view definitions; this
ablation isolates depth as the variable: a pure prerequisite chain of
increasing length, measuring publishing, Algorithm Reach (whose output
|M| is Θ(depth²) here — the matrix's worst case), the descendant-axis
evaluation, and a deep update.
"""

import pytest

from repro.atg.publisher import publish_store
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder
from repro.core.updater import SideEffectPolicy, XMLViewUpdater
from repro.workloads.chains import build_chain
from repro.ops import DeleteOp

DEPTHS = (50, 150, 300)


@pytest.mark.parametrize("depth", DEPTHS)
def test_publish_chain(benchmark, depth):
    atg, db = build_chain(depth=depth)
    store = benchmark(publish_store, atg, db)
    assert store.num_nodes == 1 + depth * 5


@pytest.mark.parametrize("depth", DEPTHS)
def test_reach_on_chain(benchmark, depth):
    atg, db = build_chain(depth=depth)
    store = publish_store(atg, db)
    topo = TopoOrder.from_store(store)
    matrix = benchmark(compute_reach, store, topo)
    # Quadratic |M|: every level is an ancestor of every deeper level.
    assert len(matrix) > depth * depth / 2


@pytest.mark.parametrize("depth", DEPTHS)
def test_descendant_query_on_chain(benchmark, depth):
    atg, db = build_chain(depth=depth)
    updater = XMLViewUpdater(atg, db)
    target = f"K{depth - 1:04d}"
    result = benchmark(updater.evaluate_xpath, f"//course[cno={target}]")
    assert len(result.targets) == 1


def test_deep_update(benchmark):
    depth = 150

    def setup():
        atg, db = build_chain(depth=depth, students=1)
        updater = XMLViewUpdater(
            atg, db, side_effect_policy=SideEffectPolicy.PROPAGATE
        )
        return (updater,), {}

    def work(updater):
        return updater.apply_op(DeleteOp(
            f"//course[cno=K{depth - 2:04d}]//student[ssn=T000]"
        ))

    outcome = benchmark.pedantic(work, setup=setup, rounds=2, iterations=1)
    assert outcome.accepted


def test_m_quadratic_in_depth():
    sizes = {}
    for depth in DEPTHS:
        atg, db = build_chain(depth=depth)
        store = publish_store(atg, db)
        topo = TopoOrder.from_store(store)
        sizes[depth] = len(compute_reach(store, topo))
    # 6x depth should give ~36x pairs (quadratic); allow slack.
    growth = sizes[DEPTHS[-1]] / sizes[DEPTHS[0]]
    ratio = DEPTHS[-1] / DEPTHS[0]
    assert ratio ** 1.5 < growth
