"""Subscription maintenance vs evaluate-per-op (the tentpole claim).

A service keeping N standing XPath queries current across a stream of
updates has two strategies:

- **evaluate-per-op** — after every committed op, re-run every query
  with ``service.xpath`` (what clients did before subscriptions);
- **subscriptions** — register each query once; the engine consumes the
  ΔV event of every commit and, per query, *skips* (dependency
  disjoint), re-evaluates a *suffix* from a cached context, or falls
  back to a full evaluation (``//`` queries, coarse events).

Both strategies run the identical op stream over identically built
views; the benchmark times only the query-maintenance side (the
registry's publish work plus every ``result()`` read vs the fresh
evaluations), asserts result equality op by op, and checks the
tentpole claim: **≥ 3× faster at the largest configured size**.
Timings land in ``BENCH_index.json`` via ``conftest.record_bench``.
"""

from __future__ import annotations

import time

import pytest
from conftest import SIZES, record_bench

from repro.relview.insert import reset_fresh_counter
from repro.service import ViewConfig, open_view
from repro.workloads import REGISTRAR_QUERIES, make_query_set, make_workload
from repro.workloads.registrar import build_registrar
from repro.workloads.synthetic import SyntheticConfig, build_synthetic

#: Standing queries per service; dominated by prunable anchored paths
#: with a realistic share of never-prunable ``//`` queries.
N_QUERIES = 24
OPS_PER_KIND = 4
LARGEST = max(SIZES)


def _service(dataset):
    reset_fresh_counter()
    return open_view(
        dataset.atg,
        dataset.db,
        config=ViewConfig(side_effects="propagate", strict=False),
    )


def _op_stream(dataset):
    ops = []
    for cls in ("W1", "W2", "W3"):
        ops.extend(make_workload(dataset, "delete", cls, count=OPS_PER_KIND))
    ops.extend(make_workload(
        dataset, "insert", "W2", count=OPS_PER_KIND, new_key_fraction=0.0
    ))
    ops.extend(make_workload(
        dataset, "replace", "W2", count=OPS_PER_KIND, new_key_fraction=0.0
    ))
    return ops


def _measure(n_c: int) -> dict:
    """Run both strategies over the same stream; return timings."""
    dataset = build_synthetic(SyntheticConfig(n_c=n_c, seed=42))
    queries = make_query_set(dataset, count=N_QUERIES)
    ops = _op_stream(dataset)

    # -- evaluate-per-op baseline --------------------------------------------------
    baseline = _service(dataset)
    baseline_seconds = 0.0
    baseline_results: list[list[tuple[int, ...]]] = []
    for op in ops:
        baseline.apply(op)
        start = time.perf_counter()
        snapshot = [
            tuple(sorted(baseline.xpath(q).targets)) for q in queries
        ]
        baseline_seconds += time.perf_counter() - start
        baseline_results.append(snapshot)

    # -- subscriptions -------------------------------------------------------------
    dataset2 = build_synthetic(SyntheticConfig(n_c=n_c, seed=42))
    service = _service(dataset2)
    subs = [service.subscribe(q) for q in queries]
    sub_seconds = 0.0
    for index, op in enumerate(ops):
        before = service.subscriptions.publish_seconds
        service.apply(op)  # maintenance runs inside the commit...
        sub_seconds += service.subscriptions.publish_seconds - before
        start = time.perf_counter()
        snapshot = [sub.result() for sub in subs]
        sub_seconds += time.perf_counter() - start
        # ...and must agree with evaluate-per-op after every op.
        assert snapshot == baseline_results[index], (
            f"subscription drift after op {index} ({op.kind})"
        )

    stats = service.subscriptions.stats()
    return {
        "n_c": n_c,
        "ops": len(ops),
        "queries": len(queries),
        "evaluate_per_op": baseline_seconds,
        "subscriptions": sub_seconds,
        "skips": stats["skips"],
        "suffix_refreshes": stats["suffix_refreshes"],
        "full_refreshes": stats["full_refreshes"],
    }


@pytest.mark.parametrize("n_c", SIZES)
def test_subscriptions_agree_and_record(n_c):
    measured = _measure(n_c)
    experiment = f"fig_subscriptions:n{n_c}"
    extra = {k: measured[k] for k in (
        "ops", "queries", "skips", "suffix_refreshes", "full_refreshes",
    )}
    record_bench(
        experiment, "auto", "evaluate_per_op",
        measured["evaluate_per_op"], **extra,
    )
    record_bench(
        experiment, "auto", "subscriptions",
        measured["subscriptions"], **extra,
    )
    # The engine must actually prune: a silent degradation to
    # evaluate-per-op would keep equality but lose the point.
    assert measured["skips"] > 0
    assert measured["suffix_refreshes"] > 0


def test_registrar_subscriptions_agree():
    """Same claim on the running example (tiny view, full op coverage)."""
    from repro.ops import BaseUpdateOp, DeleteOp, InsertOp, ReplaceOp

    atg, db = build_registrar()
    service = open_view(
        atg, db,
        config=ViewConfig(side_effects="propagate", strict=False),
    )
    subs = [service.subscribe(q) for q in REGISTRAR_QUERIES]
    stream = [
        DeleteOp("course[cno=CS650]/prereq/course[cno=CS320]"),
        InsertOp("course[cno=CS650]/prereq", "course",
                 ("CS500", "Operating Systems")),
        ReplaceOp("course[cno=CS650]/prereq/course[cno=CS500]",
                  "course", ("CS320", "Databases")),
        BaseUpdateOp(ops=(
            ("insert", "course", ("CS777", "Compilers", "CS")),
        )),
        InsertOp(".", "course", ("CS700", "Theory")),
    ]
    for op in stream:
        service.apply(op)
        for sub in subs:
            fresh = tuple(sorted(service.xpath(sub.path).targets))
            assert sub.result() == fresh, sub.path
    stats = service.subscriptions.stats()
    record_bench(
        "fig_subscriptions:registrar", "auto", "publish",
        stats["publish_seconds"],
        ops=len(stream), queries=len(subs), skips=stats["skips"],
        suffix_refreshes=stats["suffix_refreshes"],
        full_refreshes=stats["full_refreshes"],
    )
    assert stats["skips"] > 0


@pytest.mark.perf
def test_subscriptions_beat_evaluate_per_op_3x():
    """Tentpole acceptance: ≥3× at the largest configured size."""
    measured = _measure(LARGEST)
    ratio = measured["evaluate_per_op"] / max(
        measured["subscriptions"], 1e-9
    )
    record_bench(
        f"fig_subscriptions:n{LARGEST}", "auto", "speedup_vs_eval_per_op",
        0.0, ratio=round(ratio, 2),
    )
    assert ratio >= 3.0, (
        f"subscription maintenance only {ratio:.2f}x faster than "
        f"evaluate-per-op at n_c={LARGEST} "
        f"(baseline {measured['evaluate_per_op']:.4f}s vs "
        f"subscriptions {measured['subscriptions']:.4f}s; "
        f"skips={measured['skips']} "
        f"suffix={measured['suffix_refreshes']} "
        f"full={measured['full_refreshes']})"
    )
