"""Ablation A-2: DAG-compressed processing vs the uncompressed tree.

Paper claims: the DAG is often much (even exponentially) smaller than the
tree, and the two-pass DAG evaluator visits each stored edge O(|p|) times
versus the tree evaluator touching every unfolded occurrence.
"""

import pytest

from conftest import fresh_updater
from repro.baselines.tree_updater import TreeUpdater
from repro.xpath.parser import parse_xpath
from repro.xpath.tree_eval import evaluate_on_tree

N_C = 120
PATH = "//cnode[sub/cnode]"


@pytest.fixture(scope="module")
def env():
    updater, dataset = fresh_updater(N_C)
    tree = TreeUpdater(dataset.atg, dataset.db, max_nodes=2_000_000)
    return updater, tree


def test_dag_eval(benchmark, env):
    updater, _ = env
    result = benchmark(updater.evaluate_xpath, PATH)
    assert result.targets


def test_tree_eval(benchmark, env):
    _, tree = env
    path = parse_xpath(PATH)
    nodes = benchmark(evaluate_on_tree, path, tree.tree)
    assert nodes


def test_compression_factor(env):
    updater, tree = env
    assert tree.size > 2 * updater.store.num_nodes


def test_same_answers(env):
    updater, tree = env
    dag_ids = {
        (updater.store.type_of(t), updater.store.sem_of(t))
        for t in updater.evaluate_xpath(PATH).targets
    }
    tree_ids = {n.identity for n in tree.evaluate(PATH)}
    assert dag_ids == tree_ids


def test_tree_republish_cost(benchmark, env):
    """The no-incrementality baseline: full republish after an update."""
    _, tree = env
    benchmark(tree.republish)
