"""Ablation A-1: Algorithm Reach (topological DP) vs naive closures.

Paper claim (Section 3.1): Reach computes M in O(n·|V|) versus the
O(|V|² log |V|) textbook alternative.
"""

import pytest

from conftest import SIZES
from repro.baselines.naive_reach import naive_reachability, squaring_reachability
from repro.core.reachability import compute_reach
from repro.core.topo import TopoOrder


@pytest.mark.parametrize("n_c", SIZES)
def test_algorithm_reach(benchmark, readonly_updaters, n_c):
    updater, _ = readonly_updaters[n_c]
    store = updater.store
    topo = TopoOrder.from_store(store)
    matrix = benchmark(compute_reach, store, topo)
    assert len(matrix) == len(updater.reach)


@pytest.mark.parametrize("n_c", SIZES)
def test_semi_naive_closure(benchmark, readonly_updaters, n_c):
    updater, _ = readonly_updaters[n_c]
    matrix = benchmark(squaring_reachability, updater.store)
    assert matrix.equals(updater.reach)


@pytest.mark.parametrize("n_c", SIZES[:1])
def test_per_node_dfs(benchmark, readonly_updaters, n_c):
    updater, _ = readonly_updaters[n_c]
    matrix = benchmark(naive_reachability, updater.store)
    assert matrix.equals(updater.reach)


def test_reach_beats_semi_naive(readonly_updaters):
    import time

    updater, _ = readonly_updaters[SIZES[-1]]
    store = updater.store
    topo = TopoOrder.from_store(store)
    t0 = time.perf_counter()
    compute_reach(store, topo)
    reach_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    squaring_reachability(store)
    naive_time = time.perf_counter() - t0
    assert reach_time < naive_time
