"""Durability costs: fsync-policy commit throughput and recovery time.

Two questions an operator sizes a durable writer with:

- **fsync tax** — what does each acknowledgement-durability policy
  (``always`` / ``batch`` / ``os``, see ``docs/durability.md``) cost
  per commit;
- **recovery budget** — how long does ``open_view(wal_dir=...)`` take
  to recover as the replayed log tail grows (checkpoint cadence is the
  knob that bounds it).

Sizes are laptop-scale; correctness assertions (recovered state equals
the writer's) always run, and the timings land in ``BENCH_index.json``
via ``conftest.record_bench`` under the ``wal`` experiment.
"""

from __future__ import annotations

import time

from conftest import record_bench

from repro.ops import DeleteOp, InsertOp
from repro.service import ViewConfig, open_view
from repro.wal import FSYNC_POLICIES
from repro.workloads.registrar import build_registrar

COMMITS = 60


def _config(wal_dir, **overrides):
    return ViewConfig(
        strict=False,
        side_effects="propagate",
        wal_dir=str(wal_dir),
        **overrides,
    )


def _commit_loop(service, commits):
    for i in range(commits):
        cno = ("CS650", "CS320", "CS240")[i % 3]
        service.apply(
            InsertOp(f"//course[cno={cno}]/prereq", "course", ("CS900", "X"))
        )
        service.apply(
            DeleteOp(f"//course[cno={cno}]/prereq/course[cno=CS900]")
        )


def test_fsync_policy_commit_throughput(tmp_path):
    """One timed commit loop per fsync policy, same op stream."""
    for policy in FSYNC_POLICIES:
        wal_dir = tmp_path / policy
        atg, db = build_registrar()
        service = open_view(atg, db, config=_config(wal_dir, wal_fsync=policy))
        start = time.perf_counter()
        _commit_loop(service, COMMITS)
        service.close()
        elapsed = time.perf_counter() - start
        stats = service.stats()["wal"]
        record_bench(
            "wal", "auto", f"commit_fsync_{policy}", elapsed,
            commits=COMMITS, records=stats["records"],
            fsyncs=stats["fsyncs"],
            commits_per_s=round(COMMITS / max(elapsed, 1e-9), 1),
        )
        # Correctness always: the directory recovers to the writer.
        atg2, db2 = build_registrar()
        recovered = open_view(atg2, db2, config=_config(wal_dir))
        assert recovered.store.digest() == service.store.digest()
        assert recovered.check_consistency() == []
        recovered.close()


def test_recovery_time_vs_log_length(tmp_path):
    """Recovery cost as the replayed tail grows past the checkpoint.

    ``wal_checkpoint_every`` is set beyond the stream so the only
    checkpoint is the boot one — every record must be replayed, making
    the timing a direct function of log length.
    """
    for commits in (20, 80):
        wal_dir = tmp_path / f"len{commits}"
        atg, db = build_registrar()
        service = open_view(
            atg, db, config=_config(wal_dir, wal_checkpoint_every=100_000)
        )
        _commit_loop(service, commits)
        service.close()
        records = service.stats()["wal"]["records"]

        atg2, db2 = build_registrar()
        start = time.perf_counter()
        recovered = open_view(
            atg2, db2, config=_config(wal_dir, wal_checkpoint_every=100_000)
        )
        elapsed = time.perf_counter() - start
        record_bench(
            "wal", "auto", f"recover_{records}_records", elapsed,
            records=records,
        )
        assert recovered.store.digest() == service.store.digest()
        assert recovered.check_consistency() == []
        recovered.close()
