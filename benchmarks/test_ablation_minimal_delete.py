"""Ablation A-3: Algorithm delete (PTIME, arbitrary source choice) vs the
NP-complete minimal-deletion problem (greedy + exact).

Paper context: Theorem 1 vs Theorem 3 — correctness is tractable,
minimality is not.  The benchmark shows the cost gap and that the greedy
cover stays close to the exact optimum on these instances.
"""

import pytest

from conftest import fresh_updater
from repro.core.translate import xdelete
from repro.relview.delete import expand_view_deletions, translate_deletions
from repro.relview.minimal import (
    minimal_deletion_exact,
    minimal_deletion_greedy,
)
from repro.workloads.queries import make_workload

N_C = 120


@pytest.fixture(scope="module")
def deletion_instance():
    updater, dataset = fresh_updater(N_C)
    op = make_workload(dataset, "delete", "W1", count=1)[0]
    result = updater.evaluate_xpath(op.path)
    delta_v = xdelete(updater.store, result)
    rows = expand_view_deletions(
        updater.registry, updater.store, updater.db, delta_v
    )
    return updater, rows


def test_algorithm_delete(benchmark, deletion_instance):
    updater, rows = deletion_instance
    plan = benchmark(translate_deletions, updater.registry, updater.db, rows)
    assert len(plan.delta_r) >= 1


def test_greedy_minimal(benchmark, deletion_instance):
    updater, rows = deletion_instance
    delta = benchmark(
        minimal_deletion_greedy, updater.registry, updater.db, rows
    )
    assert delta is not None


def test_exact_minimal(benchmark, deletion_instance):
    updater, rows = deletion_instance
    delta = benchmark(
        minimal_deletion_exact, updater.registry, updater.db, rows
    )
    assert delta is not None


def test_greedy_close_to_exact(deletion_instance):
    updater, rows = deletion_instance
    greedy = minimal_deletion_greedy(updater.registry, updater.db, rows)
    exact = minimal_deletion_exact(updater.registry, updater.db, rows)
    algorithm = translate_deletions(updater.registry, updater.db, rows)
    assert len(exact) <= len(greedy) <= len(algorithm.delta_r) + 1
    assert len(greedy) <= 2 * max(1, len(exact))
