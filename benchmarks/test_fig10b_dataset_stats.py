"""Fig. 10(b): dataset statistics — published C subtrees vs compressed DAG,
|M| and |L| per |C| — plus the publish cost itself.

Paper shape: all quantities grow linearly-ish with |C|; sharing of C
instances sits around 31.4%.
"""

import pytest

from conftest import SIZES
from repro.atg.publisher import publish_store
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


@pytest.mark.parametrize("n_c", SIZES)
def test_publish_dag(benchmark, n_c):
    dataset = build_synthetic(SyntheticConfig(n_c=n_c))
    store = benchmark(publish_store, dataset.atg, dataset.db)
    assert store.num_nodes > 0


@pytest.mark.parametrize("n_c", SIZES)
def test_dataset_statistics_shape(readonly_updaters, n_c):
    updater, _ = readonly_updaters[n_c]
    store = updater.store
    cnodes = [n for n in store.nodes() if store.type_of(n) == "cnode"]
    shared = sum(1 for n in cnodes if store.in_degree(n) > 1)
    rate = shared / len(cnodes)
    # Paper: 31.4% of C instances shared; accept a generous band.
    assert 0.15 < rate < 0.55, f"sharing rate {rate:.1%} out of band"
    assert len(updater.topo) == store.num_nodes
    assert len(updater.reach) > store.num_edges


def test_stats_grow_linearly(readonly_updaters):
    small, _ = readonly_updaters[SIZES[0]]
    large, _ = readonly_updaters[SIZES[-1]]
    factor = SIZES[-1] / SIZES[0]
    node_growth = large.store.num_nodes / small.store.num_nodes
    # DAG nodes grow roughly with |C| (within 3x of linear).
    assert factor / 3 < node_growth < factor * 3
