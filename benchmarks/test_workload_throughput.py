"""Throughput benchmark over generated workloads, with a regression gate.

The workload generator (``repro-bench generate``) makes op streams
first-class artifacts; this benchmark makes their *cost* first-class
too.  Each measured pattern regenerates its stream deterministically
(fixed seed), applies it through a fresh :class:`ViewService`, and
records wall time and ops/second into ``BENCH_index.json`` under the
``workload:<pattern>`` experiments — giving later PRs a machine-readable
throughput trajectory per adversarial shape.

The gate compares the fresh measurement against the best (highest
ops/second) record already committed for the same experiment key.  In
strict mode (``REPRO_BENCH_STRICT=1``, CI's calm perf leg) a drop of
more than 30% fails; the default loose floor (10× slower) only catches
catastrophic regressions, so laptop noise never flakes.
"""

from __future__ import annotations

import json
import os
import time

import pytest
from conftest import BENCH_INDEX_PATH, record_bench

from repro.bench.workload_gen import WorkloadSpec, generate_records
from repro.service import ViewConfig, open_view
from repro.workloads import named_workload

#: The measured shapes: the default blend plus the churn stress (GC and
#: id-reuse heavy — the shape most sensitive to index-repair cost).
MEASURED = (
    WorkloadSpec(
        workload="synthetic:120",
        ops=150,
        seed=42,
        pattern="mixed",
        key_skew=0.8,
    ),
    WorkloadSpec(
        workload="synthetic:120",
        ops=150,
        seed=42,
        pattern="churn",
        key_skew=0.8,
    ),
)

#: Throughput floor relative to the best committed record: strict mode
#: fails a >30% drop, loose mode only a 10x collapse.
STRICT_FLOOR = 0.70
LOOSE_FLOOR = 0.10

#: Measurement repeats; the best run is recorded (scheduler hiccups
#: only ever slow a run down, so max throughput is least noisy).
ROUNDS = 3


def _best_committed(experiment: str, backend: str) -> float | None:
    """Best committed ops/second for this experiment key, if any."""
    if not BENCH_INDEX_PATH.exists():
        return None
    try:
        payload = json.loads(BENCH_INDEX_PATH.read_text())
    except ValueError:
        return None
    best = None
    for rec in payload.get("records", []):
        if (
            rec.get("experiment") == experiment
            and rec.get("backend") == backend
            and rec.get("phase") == "apply"
            and rec.get("ops_per_second")
        ):
            value = float(rec["ops_per_second"])
            best = value if best is None else max(best, value)
    return best


def _apply_stream(spec: WorkloadSpec) -> tuple[float, int, str]:
    """One timed application of ``spec``'s stream; returns
    (seconds, accepted ops, resolved backend)."""
    records = list(generate_records(spec))  # generation is not timed
    ops = records[1:]
    atg, db = named_workload(spec.workload)
    service = open_view(atg, db, config=ViewConfig(strict=False))
    start = time.perf_counter()
    accepted = sum(1 for op in ops if service.apply(op).accepted)
    elapsed = time.perf_counter() - start
    backend = service.stats()["index_backend"]
    assert accepted == spec.ops  # generated streams apply cleanly
    assert service.check_consistency() == []
    return elapsed, accepted, backend


@pytest.mark.perf
@pytest.mark.parametrize(
    "spec", MEASURED, ids=[spec.pattern for spec in MEASURED]
)
def test_workload_throughput_recorded_and_gated(spec):
    best_elapsed = float("inf")
    backend = "auto"
    for _ in range(ROUNDS):
        elapsed, _accepted, backend = _apply_stream(spec)
        best_elapsed = min(best_elapsed, elapsed)
    ops_per_second = spec.ops / max(best_elapsed, 1e-9)
    experiment = f"workload:{spec.pattern}"

    # The gate reads the *committed* best before this session's record
    # overwrites it at sessionfinish.
    best = _best_committed(experiment, backend)
    record_bench(
        experiment,
        backend,
        "apply",
        best_elapsed,
        ops=spec.ops,
        ops_per_second=round(ops_per_second, 1),
        workload=spec.workload,
        seed=spec.seed,
    )
    if best is None:
        pytest.skip(
            f"no committed baseline for {experiment}/{backend}; "
            f"recorded {ops_per_second:.0f} ops/s as the first data point"
        )
    floor = STRICT_FLOOR if os.environ.get("REPRO_BENCH_STRICT") else (
        LOOSE_FLOOR
    )
    assert ops_per_second >= best * floor, (
        f"{experiment} throughput regressed: {ops_per_second:.0f} ops/s "
        f"vs best committed {best:.0f} ops/s "
        f"({ops_per_second / best:.0%}, floor {floor:.0%})"
    )
