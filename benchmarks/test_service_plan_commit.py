"""Benchmark: the plan/commit service protocol vs direct apply.

The two-phase protocol must be free lunch: ``service.plan(op)`` runs
exactly the foreground phases a direct ``apply`` would, and
``plan.commit()`` finishes with the identical ΔV/ΔR — so splitting an
update across the protocol may not change what is computed, only *when*.
This benchmark drives one op of every kind through both protocols on a
synthetic view, checks the equivalence, and records the per-op
``UpdateOutcome.to_dict()`` payloads into ``BENCH_index.json`` (the
wire dict is the record format — no hand-rolled assembly).
"""

from __future__ import annotations

from conftest import SIZES, record_bench

from repro.ops import BaseUpdateOp
from repro.relview.insert import reset_fresh_counter
from repro.service import ViewConfig, open_view
from repro.workloads.queries import make_workload
from repro.workloads.synthetic import SyntheticConfig, build_synthetic


def _fresh_service(n_c: int):
    reset_fresh_counter()
    dataset = build_synthetic(SyntheticConfig(n_c=n_c, seed=42))
    service = open_view(
        dataset.atg,
        dataset.db,
        config=ViewConfig(side_effects="propagate", strict=False),
    )
    return service, dataset


def _ops_per_kind(service, dataset):
    delete_op = make_workload(dataset, "delete", "W2", count=1)[0]
    insert_op = make_workload(
        dataset, "insert", "W2", count=1, new_key_fraction=0.0
    )[0]
    replace_op = make_workload(
        dataset, "replace", "W3", count=1, new_key_fraction=0.0
    )[0]
    plan = service.plan(delete_op)  # a dry run donates the base ΔR
    base_op = BaseUpdateOp.from_delta(plan.outcome.delta_r)
    plan.abort()
    return [delete_op, insert_op, replace_op, base_op]


def _rows(delta):
    if delta is None:
        return None
    return [repr(op) for op in delta]


def test_plan_commit_equals_apply_and_records_outcomes():
    n_c = SIZES[-1]
    probe, dataset = _fresh_service(n_c)
    ops = _ops_per_kind(probe, dataset)

    for op in ops:
        applier, _ = _fresh_service(n_c)
        out_apply = applier.apply(op)

        planner, _ = _fresh_service(n_c)
        plan = planner.plan(op)
        assert "maintain" not in plan.timings  # foreground only so far
        out_commit = plan.commit()

        assert out_apply.accepted and out_commit.accepted
        assert _rows(out_apply.delta_v) == _rows(out_commit.delta_v)
        assert _rows(out_apply.delta_r) == _rows(out_commit.delta_r)
        assert applier.reach.equals(planner.reach)

        backend = planner.index_backend
        record_bench(
            "service_plan_commit",
            backend,
            f"apply:{op.kind}",
            out_apply.total_time,
            n_c=n_c,
            outcome=out_apply.to_dict(),
        )
        record_bench(
            "service_plan_commit",
            backend,
            f"plan_commit:{op.kind}",
            out_commit.total_time,
            n_c=n_c,
            foreground=out_commit.foreground_time,
            outcome=out_commit.to_dict(),
        )


def test_aborted_plans_cost_only_foreground():
    service, dataset = _fresh_service(SIZES[0])
    op = make_workload(dataset, "delete", "W1", count=1)[0]
    before = service.stats()
    plan = service.plan(op)
    plan.abort()
    after = service.stats()
    assert before["nodes"] == after["nodes"]
    assert before["edges"] == after["edges"]
    assert after["maintenance_runs"] == before["maintenance_runs"]
    assert "apply" not in plan.timings and "maintain" not in plan.timings
