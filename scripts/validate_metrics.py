#!/usr/bin/env python3
"""Validate a Prometheus text exposition document.

Usage::

    python scripts/validate_metrics.py metrics.prom
    python -m repro.apply --workload registrar --metrics - ops.jsonl \
        | python scripts/validate_metrics.py -
    python scripts/validate_metrics.py current.prom --previous before.prom

Reads an exposition document (a file path, or ``-`` for stdin), checks
it with :func:`repro.metrics.validate.validate_exposition`, prints every
problem to stderr and exits 1 if any were found.  ``--previous`` adds
the cross-scrape check: counters (and histogram ``_bucket`` / ``_sum``
/ ``_count`` series) must not have decreased since the earlier scrape.

Lines that are not part of an exposition (the apply CLI's summary
table, say) fail loudly — pipe only the metrics block in, or use
``--metrics PATH`` to write it to its own file.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

# Runnable straight from a checkout (CI does `python scripts/...` before
# an editable install is guaranteed): put src/ on the path if the
# package is not importable yet.
try:
    from repro.metrics.validate import validate_exposition
except ImportError:  # pragma: no cover - checkout-only convenience
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src")
    )
    from repro.metrics.validate import validate_exposition


def _read(source: str) -> str:
    if source == "-":
        return sys.stdin.read()
    return pathlib.Path(source).read_text(encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="validate_metrics.py",
        description="Validate Prometheus text exposition output.",
    )
    parser.add_argument(
        "exposition",
        help="exposition file to validate, or '-' for stdin",
    )
    parser.add_argument(
        "--previous",
        metavar="FILE",
        default=None,
        help="an earlier scrape of the same target; counters must not "
        "have decreased since",
    )
    args = parser.parse_args(argv)
    try:
        text = _read(args.exposition)
        previous = _read(args.previous) if args.previous else None
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = validate_exposition(text, previous=previous)
    for problem in problems:
        print(f"invalid: {problem}", file=sys.stderr)
    if problems:
        print(
            f"{len(problems)} problem(s) found", file=sys.stderr
        )
        return 1
    samples = sum(
        1
        for line in text.splitlines()
        if line.strip() and not line.startswith("#")
    )
    print(f"ok: {samples} sample(s), no problems")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
